"""Unit tests for the protocol registry and the failure/churn/estimate models."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.node import StateTable
from repro.core.rng import RandomSource
from repro.failures.churn import ChurnEvent, NoChurn, UniformChurn
from repro.failures.estimates import EstimateError, distorted_estimate, estimate_grid
from repro.failures.message_loss import IndependentLoss, ReliableDelivery
from repro.graphs.configuration_model import random_regular_graph
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.push import PushProtocol
from repro.protocols.registry import available_protocols, build_protocol


class TestProtocolRegistry:
    def test_all_registered_protocols_build(self):
        for name in available_protocols():
            protocol = build_protocol(name, 256)
            assert protocol.horizon() >= 1

    def test_specific_types(self):
        assert isinstance(build_protocol("push", 256), PushProtocol)
        assert isinstance(build_protocol("algorithm1", 256), Algorithm1)

    def test_kwargs_are_forwarded(self):
        protocol = build_protocol("algorithm1", 256, alpha=2.0)
        assert protocol.alpha == 2.0

    def test_push_pull_4_preset(self):
        protocol = build_protocol("push-pull-4", 256)
        assert protocol.name == "push-pull-4"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            build_protocol("telepathy", 256)

    def test_available_protocols_sorted(self):
        names = available_protocols()
        assert names == sorted(names)
        assert "algorithm1" in names

    def test_legacy_builder_mapping_is_read_only(self):
        from repro.protocols.registry import PROTOCOL_BUILDERS

        assert set(PROTOCOL_BUILDERS) == set(available_protocols())
        with pytest.raises(TypeError):
            PROTOCOL_BUILDERS["my-proto"] = lambda n: None  # register via PROTOCOLS


class TestMessageLossModels:
    def test_reliable_delivery_never_fails(self, rng):
        model = ReliableDelivery()
        assert not any(model.transmission_lost(rng) for _ in range(100))
        assert not any(model.channel_fails(rng) for _ in range(100))

    def test_independent_loss_extremes(self, rng):
        always = IndependentLoss(transmission_loss_probability=1.0)
        never = IndependentLoss(transmission_loss_probability=0.0)
        assert always.transmission_lost(rng)
        assert not never.transmission_lost(rng)

    def test_independent_loss_frequency(self):
        rng = RandomSource(seed=9)
        model = IndependentLoss(transmission_loss_probability=0.3)
        losses = sum(model.transmission_lost(rng) for _ in range(3000))
        assert 700 < losses < 1100

    def test_channel_failures_are_separate(self, rng):
        model = IndependentLoss(channel_failure_probability=1.0)
        assert model.channel_fails(rng)
        assert not model.transmission_lost(rng)

    def test_invalid_probabilities(self):
        with pytest.raises(ConfigurationError):
            IndependentLoss(transmission_loss_probability=1.2)
        with pytest.raises(ConfigurationError):
            IndependentLoss(channel_failure_probability=-0.1)

    def test_describe(self):
        description = IndependentLoss(transmission_loss_probability=0.2).describe()
        assert description["transmission_loss_probability"] == 0.2


class TestEstimateError:
    def test_apply_scales_and_clamps(self):
        assert EstimateError(2.0).apply(1000) == 2000
        assert EstimateError(0.5).apply(1000) == 500
        assert EstimateError(0.0001).apply(100) == 2

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            EstimateError(0.0)

    def test_distorted_estimate_shorthand(self):
        assert distorted_estimate(100, 4.0) == 400

    def test_estimate_grid(self):
        grid = estimate_grid(2)
        assert [e.factor for e in grid] == [0.25, 0.5, 1.0, 2.0, 4.0]
        with pytest.raises(ConfigurationError):
            estimate_grid(-1)


class TestChurnModels:
    def test_no_churn_is_a_noop(self, rng, small_regular_graph):
        states = StateTable(n=small_regular_graph.node_count, source=0)
        event = NoChurn().apply(1, small_regular_graph, states, rng)
        assert event.departures == 0 and event.arrivals == 0

    def test_uniform_churn_changes_membership(self):
        rng = RandomSource(seed=5)
        graph = random_regular_graph(128, 6, rng.spawn("graph"))
        states = StateTable(n=128, source=0)
        churn = UniformChurn(leave_rate=0.1, join_rate=0.1, target_degree=6)
        event = churn.apply(1, graph, states, rng.spawn("churn"))
        assert isinstance(event, ChurnEvent)
        assert event.departures > 0 or event.arrivals > 0
        assert graph.node_count == 128 - event.departures + event.arrivals
        assert len(states) == graph.node_count

    def test_source_is_protected(self):
        rng = RandomSource(seed=5)
        graph = random_regular_graph(32, 4, rng.spawn("graph"))
        states = StateTable(n=32, source=0)
        churn = UniformChurn(leave_rate=0.9, join_rate=0.0, target_degree=4)
        for round_index in range(1, 4):
            churn.apply(round_index, graph, states, rng.spawn(f"churn-{round_index}"))
        assert states.contains(0)
        assert 0 in graph

    def test_joiners_are_wired_into_the_overlay(self):
        rng = RandomSource(seed=6)
        graph = random_regular_graph(64, 6, rng.spawn("graph"))
        states = StateTable(n=64, source=0)
        churn = UniformChurn(leave_rate=0.0, join_rate=0.2, target_degree=6)
        event = churn.apply(1, graph, states, rng.spawn("churn"))
        assert event.arrivals > 0
        for joiner in event.joined:
            assert graph.degree(joiner) > 0
            assert not states[joiner].informed

    def test_max_rounds_stops_churn(self):
        rng = RandomSource(seed=7)
        graph = random_regular_graph(32, 4, rng.spawn("graph"))
        states = StateTable(n=32, source=0)
        churn = UniformChurn(leave_rate=0.5, join_rate=0.5, target_degree=4, max_rounds=1)
        churn.apply(1, graph, states, rng.spawn("round1"))
        later = churn.apply(2, graph, states, rng.spawn("round2"))
        assert later.departures == 0 and later.arrivals == 0

    def test_invalid_rates(self):
        with pytest.raises(ConfigurationError):
            UniformChurn(leave_rate=1.5, join_rate=0.0, target_degree=4)
        with pytest.raises(ConfigurationError):
            UniformChurn(leave_rate=0.0, join_rate=0.0, target_degree=1)

    def test_describe(self):
        churn = UniformChurn(leave_rate=0.1, join_rate=0.2, target_degree=8)
        description = churn.describe()
        assert description["leave_rate"] == 0.1
        assert description["join_rate"] == 0.2
