"""Tests for the distributed sweep executor (repro.dist).

Covers the partition invariants (every grid point assigned exactly once for
any shard count), bit-identical serial/parallel parity down to per-round
history, merge independence of shard/completion order, checkpoint/resume
semantics, the RunResult wire format, and the CLI surface
(``run-spec --workers/--shard/--resume/--dry-run``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.errors import ConfigurationError
from repro.dist import (
    CheckpointStore,
    ParallelScenarioExecutor,
    PointProgress,
    expand_points,
    merge_runs,
    parse_shard,
    select_indices,
    shard_indices,
    spec_fingerprint,
)
from repro.experiments.registry import run_experiment_by_id
from repro.experiments.results_io import load_table_json, save_table_json
from repro.spec import (
    FailureSpec,
    GraphSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    run_spec,
    save_spec,
)


def sweep_spec(**overrides) -> ScenarioSpec:
    """A small two-axis grid (2 protocols x 2 sizes, 2 seeds per point)."""
    defaults = dict(
        name="dist-test",
        graph=GraphSpec(family="connected-random-regular", params={"n": 64, "d": 6}),
        protocol=ProtocolSpec(name="push"),
        sweep=SweepSpec(
            axes=(
                SweepAxis(path="protocol.name", values=("push", "pull"), key="protocol"),
                SweepAxis(path="graph.params.n", values=(64, 128)),
            )
        ),
        repetitions=2,
        master_seed=7,
        label="d-{protocol}",
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def assert_bit_identical(left, right):
    """Both ScenarioRuns hold equal points and per-round histories."""
    assert len(left.points) == len(right.points)
    for ours, theirs in zip(left.points, right.points):
        assert ours.index == theirs.index
        assert ours.values == theirs.values
        assert ours.label == theirs.label
        assert ours.spec == theirs.spec
        assert len(ours.results) == len(theirs.results)
        for a, b in zip(ours.results, theirs.results):
            assert a.history == b.history  # per-round parity
            assert a == b  # full dataclass equality (all counters + metadata)


class TestPartition:
    @pytest.mark.parametrize("total", [0, 1, 2, 5, 7, 12, 16, 100])
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 7, 16, 20])
    def test_every_point_assigned_exactly_once(self, total, count):
        combined = []
        for index in range(count):
            combined.extend(shard_indices(total, index, count))
        assert combined == list(range(total))

    @pytest.mark.parametrize("total,count", [(10, 3), (7, 2), (100, 16)])
    def test_shards_balanced_within_one_point(self, total, count):
        sizes = [len(shard_indices(total, i, count)) for i in range(count)]
        assert max(sizes) - min(sizes) <= 1

    def test_parse_shard_forms(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)
        assert parse_shard((1, 2)) == (1, 2)

    @pytest.mark.parametrize("bad", ["4/4", "-1/4", "1/0", "a/b", "1", "1/2/3", (2, 2)])
    def test_parse_shard_rejects_invalid(self, bad):
        with pytest.raises(ConfigurationError):
            parse_shard(bad)

    def test_select_indices_slice_and_explicit(self):
        assert select_indices(6, points=slice(1, 4)) == [1, 2, 3]
        assert select_indices(6, points=[5, 0, 2]) == [0, 2, 5]
        with pytest.raises(ConfigurationError, match="out of range"):
            select_indices(6, points=[6])
        with pytest.raises(ConfigurationError, match="duplicates"):
            select_indices(6, points=[1, 1])

    def test_select_indices_shard_composes_with_points(self):
        # Shard partitions the points-filtered list, not the raw grid.
        subset = select_indices(10, points=slice(2, 8))  # [2..7]
        left = select_indices(10, shard="0/2", points=slice(2, 8))
        right = select_indices(10, shard="1/2", points=slice(2, 8))
        assert left + right == subset

    def test_expand_points_bakes_labels_row_major(self):
        points = expand_points(sweep_spec())
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert [p.label for p in points] == ["d-push", "d-push", "d-pull", "d-pull"]
        assert points[1].values == {"protocol": "push", "n": 128}
        for point in points:
            assert point.spec.sweep is None
            assert point.spec.label == point.label  # baked, not the template


class TestWireFormat:
    def test_run_result_round_trips_bit_exactly(self):
        spec = sweep_spec(
            failure=FailureSpec(
                model="independent-loss",
                params={"transmission_loss_probability": 0.1},
            )
        )
        for result in run_spec(spec).results():
            restored = type(result).from_dict(
                json.loads(json.dumps(result.to_dict()))
            )
            assert restored == result
            assert restored.history == result.history
            assert restored.metadata == result.metadata

    def test_to_dict_is_json_safe(self):
        result = run_spec(sweep_spec()).results()[0]
        json.dumps(result.to_dict())  # must not raise


class TestParallelParity:
    def test_two_workers_bit_identical_to_serial(self):
        spec = sweep_spec()
        serial = run_spec(spec)
        parallel = run_spec(spec, workers=2)
        assert_bit_identical(serial, parallel)

    def test_single_worker_inline_path_bit_identical(self):
        spec = sweep_spec()
        assert_bit_identical(run_spec(spec), run_spec(spec, workers=1))

    def test_provenance_recorded_and_table_parity(self):
        spec = sweep_spec()
        serial_table = run_spec(spec).to_table()
        parallel_run = run_spec(spec, workers=2)
        parallel_table = parallel_run.to_table()
        assert parallel_run.provenance["workers"] == 2
        assert parallel_run.provenance["points_total"] == 4
        assert parallel_table.rows == serial_table.rows
        assert parallel_table.notes == serial_table.notes
        assert parallel_table.metadata["spec"] == serial_table.metadata["spec"]
        assert parallel_table.metadata["distributed"]["workers"] == 2
        assert "distributed" not in serial_table.metadata

    def test_sweepless_spec_runs_parallel(self):
        spec = sweep_spec(sweep=None)
        assert_bit_identical(run_spec(spec), run_spec(spec, workers=2))


class TestShardingAndMerge:
    def test_shard_runs_cover_grid_and_merge_to_serial(self):
        spec = sweep_spec()
        serial = run_spec(spec)
        shards = [run_spec(spec, shard=(i, 3)) for i in range(3)]
        assert sum(len(s.points) for s in shards) == 4
        merged = merge_runs(shards)
        assert_bit_identical(serial, merged)

    def test_merge_independent_of_shard_order(self):
        spec = sweep_spec()
        serial = run_spec(spec)
        shards = [run_spec(spec, shard=(i, 2)) for i in range(2)]
        assert_bit_identical(serial, merge_runs(list(reversed(shards))))

    def test_merge_rejects_overlapping_shards(self):
        spec = sweep_spec()
        shard = run_spec(spec, shard=(0, 2))
        with pytest.raises(ConfigurationError, match="more than one shard"):
            merge_runs([shard, shard])

    def test_merge_rejects_incomplete_coverage(self):
        spec = sweep_spec()
        with pytest.raises(ConfigurationError, match="missing point"):
            merge_runs([run_spec(spec, shard=(0, 2))])

    def test_merge_rejects_mixed_scenarios(self):
        with pytest.raises(ConfigurationError, match="different scenarios"):
            merge_runs(
                [
                    run_spec(sweep_spec(), shard=(0, 2)),
                    run_spec(sweep_spec(master_seed=8), shard=(1, 2)),
                ]
            )

    def test_merge_rejects_point_quarantined_by_two_shards(self):
        # The same point quarantined by two shards means the same shard spec
        # ran twice — silently keeping either record would hide that.
        spec = sweep_spec()
        shard = run_spec(spec, shard=(0, 2))
        complement = run_spec(spec, shard=(1, 2))
        failure = {"index": 2, "label": "d-push", "attempts": 3,
                   "error_type": "Boom", "message": "x", "errors": []}
        shard.points = [p for p in shard.points]
        complement.points = [p for p in complement.points if p.index != 2]
        complement.provenance["failures"] = [dict(failure)]
        duplicate = run_spec(spec, points=[3])
        duplicate.provenance["failures"] = [dict(failure)]
        duplicate.points = []
        with pytest.raises(ConfigurationError, match="more than one"):
            merge_runs([shard, complement, duplicate])

    def test_merge_rejects_point_both_completed_and_quarantined(self):
        # One shard completed the point, another quarantined it: the shards
        # overlapped and disagreed — refuse instead of preferring either.
        spec = sweep_spec()
        left = run_spec(spec, shard=(0, 2))
        right = run_spec(spec, shard=(1, 2))
        right.provenance["failures"] = [
            {"index": 0, "label": "d-push", "attempts": 3,
             "error_type": "Boom", "message": "x", "errors": []}
        ]
        with pytest.raises(ConfigurationError, match="completed in one shard"):
            merge_runs([left, right])

    def test_points_slice_selects_subset(self):
        spec = sweep_spec()
        partial = run_spec(spec, points=slice(1, 3))
        assert [p.index for p in partial.points] == [1, 2]
        serial = run_spec(spec)
        assert partial.points[0].results == serial.points[1].results

    def test_cross_host_reassembly_via_shared_checkpoint_dir(self, tmp_path):
        # The documented multi-host pattern (docs/API.md §9): every shard
        # checkpoints into (what ends up as) one directory, and a final
        # resume pass reassembles the full grid without re-running anything.
        spec = sweep_spec()
        serial = run_spec(spec)
        for i in range(2):
            run_spec(spec, shard=(i, 2), checkpoint_dir=tmp_path)
        full = run_spec(spec, checkpoint_dir=tmp_path, resume=True)
        assert_bit_identical(serial, full)
        assert full.provenance["points_run"] == 0
        assert full.provenance["points_resumed"] == 4


class TestCheckpointResume:
    def test_resume_skips_exactly_the_checkpointed_points(self, tmp_path):
        spec = sweep_spec()
        serial = run_spec(spec)
        run_spec(spec, points=slice(0, 2), checkpoint_dir=tmp_path)
        assert len(list(tmp_path.glob("point-*.json"))) == 2

        events = []
        resumed = run_spec(
            spec, workers=2, checkpoint_dir=tmp_path, resume=True,
            progress=events.append,
        )
        assert_bit_identical(serial, resumed)
        by_source = {e.index: e.source for e in events}
        assert by_source == {0: "checkpoint", 1: "checkpoint", 2: "run", 3: "run"}
        assert resumed.provenance["points_resumed"] == 2
        assert resumed.provenance["points_run"] == 2
        # The resumed run checkpointed the remaining points too.
        assert len(list(tmp_path.glob("point-*.json"))) == 4

    def test_full_resume_runs_nothing(self, tmp_path):
        spec = sweep_spec()
        first = run_spec(spec, checkpoint_dir=tmp_path)
        again = run_spec(spec, checkpoint_dir=tmp_path, resume=True)
        assert_bit_identical(first, again)
        assert again.provenance["points_run"] == 0
        assert again.provenance["points_resumed"] == 4

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            run_spec(sweep_spec(), resume=True)

    def test_mismatched_spec_fingerprint_rejected(self, tmp_path):
        run_spec(sweep_spec(), checkpoint_dir=tmp_path)
        with pytest.raises(ConfigurationError, match="fingerprint"):
            run_spec(
                sweep_spec(master_seed=8), checkpoint_dir=tmp_path, resume=True
            )

    def test_corrupt_checkpoint_quarantined_and_point_rerun(self, tmp_path):
        spec = sweep_spec()
        serial = run_spec(spec)
        run_spec(spec, checkpoint_dir=tmp_path)
        path = tmp_path / "point-000000.json"
        path.write_text("{truncated")  # torn write / external damage
        resumed = run_spec(spec, checkpoint_dir=tmp_path, resume=True)
        # The corrupt file is renamed aside, the point re-runs, and the
        # resumed sweep is still bit-identical to the serial run.
        assert (tmp_path / "point-000000.json.corrupt").exists()
        assert_bit_identical(serial, resumed)
        assert resumed.provenance["points_resumed"] == 3
        assert resumed.provenance["points_run"] == 1
        # The re-run rewrote a clean checkpoint in the quarantined one's place.
        assert json.loads(path.read_text())["index"] == 0

    def test_truncated_mid_write_checkpoint_recovers(self, tmp_path):
        spec = sweep_spec()
        serial = run_spec(spec)
        run_spec(spec, checkpoint_dir=tmp_path)
        path = tmp_path / "point-000001.json"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn at a byte boundary
        # A stale temp from a killed writer is swept, not mistaken for data.
        (tmp_path / "point-000002.json.tmp").write_text("{half")
        resumed = run_spec(spec, checkpoint_dir=tmp_path, resume=True)
        assert_bit_identical(serial, resumed)
        assert not list(tmp_path.glob("*.json.tmp"))
        assert (tmp_path / "point-000001.json.corrupt").exists()

    def test_fingerprint_is_content_addressed(self):
        assert spec_fingerprint(sweep_spec()) == spec_fingerprint(sweep_spec())
        assert spec_fingerprint(sweep_spec()) != spec_fingerprint(
            sweep_spec(master_seed=8)
        )

    def test_checkpoint_files_are_plain_json(self, tmp_path):
        spec = sweep_spec()
        store = CheckpointStore(tmp_path, spec)
        run_spec(spec, checkpoint_dir=tmp_path)
        loaded = store.load()
        assert sorted(loaded) == [0, 1, 2, 3]
        record = loaded[0]
        assert record["fingerprint"] == spec_fingerprint(spec)
        assert record["label"] == "d-push"
        assert isinstance(record["results"], list)


class TestProgressHook:
    def test_serial_path_emits_one_event_per_point(self):
        events = []
        run_spec(sweep_spec(), progress=events.append)
        assert [e.index for e in events] == [0, 1, 2, 3]
        assert all(isinstance(e, PointProgress) for e in events)
        assert all(e.total == 4 and e.source == "run" for e in events)
        assert all(e.elapsed_seconds >= 0.0 for e in events)

    def test_parallel_path_emits_one_event_per_point(self):
        events = []
        run_spec(sweep_spec(), workers=2, progress=events.append)
        assert sorted(e.index for e in events) == [0, 1, 2, 3]
        assert {e.label for e in events} == {"d-push", "d-pull"}


class TestExecutorValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ParallelScenarioExecutor(workers=0)

    def test_e1_experiment_supports_workers(self):
        from repro.experiments.workloads import SweepSizes
        from repro.experiments.exp_round_complexity import run_experiment

        sizes = SweepSizes(sizes=[64], repetitions=2)
        serial = run_experiment(sizes=sizes)
        parallel = run_experiment(sizes=sizes, workers=2)
        assert parallel.rows == serial.rows
        assert parallel.metadata["distributed"]["workers"] == 2
        assert "distributed" not in serial.metadata

    def test_registry_rejects_workers_for_unsupporting_experiments(self):
        from repro.core.errors import ExperimentError

        with pytest.raises(ExperimentError, match="workers"):
            run_experiment_by_id("E2", workers=2)


class TestDistributedTablesRoundTrip:
    def test_saved_distributed_table_round_trips(self, tmp_path):
        table = run_spec(sweep_spec(), workers=2).to_table()
        path = save_table_json(table, tmp_path / "table.json")
        loaded = load_table_json(path)
        assert loaded.rows == table.rows
        assert loaded.metadata["distributed"] == table.metadata["distributed"]
        assert loaded.metadata["spec"] == table.metadata["spec"]


class TestCLI:
    def _write_spec(self, tmp_path) -> Path:
        return save_spec(sweep_spec(), tmp_path / "spec.json")

    def test_dry_run_prints_grid_without_running(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        assert main(["run-spec", str(path), "--dry-run"]) == 0
        output = capsys.readouterr().out
        assert "dry run: dist-test" in output
        assert "d-push" in output and "d-pull" in output
        assert "seeds" in output
        assert "success_rate" not in output  # nothing executed

    def test_dry_run_honours_shard(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        assert main(["run-spec", str(path), "--dry-run", "--shard", "1/2"]) == 0
        output = capsys.readouterr().out
        assert "shard 1/2 selects 2 of 4" in output

    def test_dry_run_predicts_batch_shape_and_engine(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        assert main(["run-spec", str(path), "--dry-run"]) == 0
        output = capsys.readouterr().out
        assert "batch_shape" in output and "est_state_mb" in output
        # 2 seeds per point, sizes 64 and 128, push/pull both batchable.
        assert "(2, 64)" in output and "(2, 128)" in output
        assert "vectorized (batched)" in output
        assert "est_state_mb" in output

    def test_dry_run_predicts_scalar_for_forced_scalar_spec(self, tmp_path, capsys):
        path = save_spec(sweep_spec(engine="scalar"), tmp_path / "scalar.json")
        assert main(["run-spec", str(path), "--dry-run"]) == 0
        output = capsys.readouterr().out
        assert "scalar (forced)" in output

    def test_workers_flag_matches_serial_save(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        serial_out = tmp_path / "serial.json"
        parallel_out = tmp_path / "parallel.json"
        assert main(["run-spec", str(path), "--save", str(serial_out)]) == 0
        assert main(
            ["run-spec", str(path), "--workers", "2", "--save", str(parallel_out)]
        ) == 0
        capsys.readouterr()
        serial = load_table_json(serial_out)
        parallel = load_table_json(parallel_out)
        assert parallel.rows == serial.rows
        assert parallel.metadata["spec"] == serial.metadata["spec"]
        assert parallel.metadata["distributed"]["workers"] == 2

    def test_resume_flag_round_trip(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        checkpoints = tmp_path / "ckpt"
        assert main(
            ["run-spec", str(path), "--checkpoint-dir", str(checkpoints)]
        ) == 0
        first = capsys.readouterr().out
        assert main(
            ["run-spec", str(path), "--checkpoint-dir", str(checkpoints), "--resume"]
        ) == 0
        second = capsys.readouterr().out
        assert first == second  # fully resumed run prints the identical table

    def test_progress_flag_prints_to_stderr(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        assert main(["run-spec", str(path), "--progress"]) == 0
        captured = capsys.readouterr()
        assert captured.err.count("done in") == 4

    def test_experiment_workers_flag(self, capsys):
        # E2 has no parallel path: the registry must say so clearly.
        with pytest.raises(Exception, match="workers"):
            main(["experiment", "E2", "--workers", "2"])


class TestGraphCachePriming:
    def test_parallel_pool_builds_each_graph_once(self):
        # 2 protocols x 2 sizes = 4 points over 2 distinct graphs: the
        # graph-first grouping must route both points of one graph to one
        # worker, so the pool builds exactly graphs_distinct graphs instead
        # of rebuilding them per sibling point.
        run = run_spec(sweep_spec(), workers=2)
        assert run.provenance["graphs_distinct"] == 2
        assert run.provenance["graph_builds"] == 2

    def test_grouping_keeps_bit_parity_and_grid_order(self):
        serial = run_spec(sweep_spec())
        grouped = run_spec(sweep_spec(), workers=2)
        assert [p.index for p in grouped.points] == [p.index for p in serial.points]
        assert_bit_identical(serial, grouped)

    def test_single_worker_path_counts_builds(self):
        run = run_spec(sweep_spec(), workers=1)
        assert run.provenance["graph_builds"] == 2
        assert run.provenance["graphs_distinct"] == 2

    def test_resume_skips_builds_for_checkpointed_points(self, tmp_path):
        spec = sweep_spec()
        run_spec(spec, workers=1, checkpoint_dir=tmp_path)
        resumed = run_spec(spec, workers=1, checkpoint_dir=tmp_path, resume=True)
        assert resumed.provenance["points_resumed"] == 4
        assert resumed.provenance["graph_builds"] == 0
        assert resumed.provenance["graphs_distinct"] == 0

    def test_single_graph_sweep_still_uses_the_whole_pool(self):
        # All four points share one graph; the group must be split across
        # the workers (graph built once per worker at worst) instead of
        # serialising the sweep onto a single process.
        from repro.dist.executor import _group_by_graph
        from repro.dist.partition import expand_points

        spec = sweep_spec(
            sweep=SweepSpec(
                axes=(
                    SweepAxis(
                        path="protocol.name",
                        values=("push", "pull", "push-pull", "algorithm1"),
                        key="protocol",
                    ),
                )
            )
        )
        groups = _group_by_graph(expand_points(spec), workers=2)
        assert len(groups) == 2
        assert sorted(len(g) for g in groups) == [2, 2]
        run = run_spec(spec, workers=2)
        assert run.provenance["graphs_distinct"] == 1
        # At most one build per worker that received a chunk.
        assert 1 <= run.provenance["graph_builds"] <= 2
        assert_bit_identical(run_spec(spec), run)

    def test_workers_one_groups_preserve_grid_order(self):
        from repro.dist.executor import _group_by_graph
        from repro.dist.partition import expand_points

        groups = _group_by_graph(expand_points(sweep_spec()), workers=1)
        assert [task[0] for group in groups for task in group] == [0, 1, 2, 3]


class TestInterruptShutdown:
    """Clean SIGINT/SIGTERM shutdown, tested deterministically.

    A real signal cannot land at a reproducible moment, so the executor's
    interrupt path is driven by an ``interrupt`` fault rule: the flag the
    signal handler would set is raised after a chosen point completes, and
    everything downstream (pool teardown, checkpoint flush, temp sweep,
    resumability) is the production code path.
    """

    def test_interrupt_flushes_checkpoints_and_resumes(self, tmp_path):
        from repro.dist import SweepInterrupted
        from repro.faultinject import FaultPlan, FaultRule

        spec = sweep_spec()
        serial = run_spec(spec)
        plan = FaultPlan(rules=(FaultRule(kind="interrupt", index=0),))
        with pytest.raises(SweepInterrupted, match="resume"):
            run_spec(spec, workers=2, checkpoint_dir=tmp_path, fault_plan=plan)
        # Completed points reached their checkpoints; no half-written temps.
        flushed = sorted(tmp_path.glob("point-*.json"))
        assert flushed  # at least the interrupting point itself
        assert not list(tmp_path.glob("*.json.tmp"))
        resumed = run_spec(spec, workers=2, checkpoint_dir=tmp_path, resume=True)
        assert_bit_identical(serial, resumed)
        assert resumed.provenance["points_resumed"] >= 1

    def test_interrupt_reports_progress_counts(self, tmp_path):
        from repro.dist import SweepInterrupted
        from repro.faultinject import FaultPlan, FaultRule

        spec = sweep_spec()
        plan = FaultPlan(rules=(FaultRule(kind="interrupt", index=1),))
        with pytest.raises(SweepInterrupted) as excinfo:
            run_spec(spec, checkpoint_dir=tmp_path, fault_plan=plan)
        interrupted = excinfo.value
        # The inline path stops right after the interrupting point, so the
        # counts are exact: points 0 and 1 completed, 2 and 3 did not.
        assert interrupted.completed == 2
        assert interrupted.total == 4
        assert str(tmp_path) in str(interrupted)

    def test_interrupt_without_checkpoint_dir_still_clean(self):
        from repro.dist import SweepInterrupted
        from repro.faultinject import FaultPlan, FaultRule

        plan = FaultPlan(rules=(FaultRule(kind="interrupt", index=0),))
        with pytest.raises(
            SweepInterrupted, match="checkpoint or stream directory"
        ):
            run_spec(sweep_spec(), workers=2, fault_plan=plan)


class TestCLIEagerResumeValidation:
    def test_resume_without_checkpoint_dir_fails_before_running(self, tmp_path):
        path = save_spec(sweep_spec(), tmp_path / "spec.json")
        with pytest.raises(ConfigurationError, match="--checkpoint-dir"):
            main(["run-spec", str(path), "--resume"])

    def test_resume_without_checkpoint_dir_fails_even_for_missing_spec(self):
        # Eager: the flag combination is rejected before the spec file is
        # even opened, so a long sweep is never silently restarted.
        with pytest.raises(ConfigurationError, match="--checkpoint-dir"):
            main(["run-spec", "/nonexistent/spec.json", "--resume"])
