"""Unit and integration tests for the median-counter protocol."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.engine import run_broadcast
from repro.core.errors import ConfigurationError
from repro.core.node import NodeState, StateTable
from repro.core.rng import RandomSource
from repro.graphs.configuration_model import random_regular_graph
from repro.protocols.median_counter import MedianCounterProtocol
from repro.protocols.push_pull import PushPullProtocol


def informed_state(node_id: int) -> NodeState:
    state = NodeState(node_id=node_id)
    state.informed = True
    state.informed_round = 0
    return state


class TestStateMachine:
    def test_new_nodes_start_in_state_b_with_counter_one(self):
        protocol = MedianCounterProtocol(n_estimate=256)
        assert protocol.wants_push(informed_state(3), 1)
        assert protocol.state_of(3) == "B"
        assert protocol.counter_of(3) == 1

    def test_uninformed_nodes_never_transmit(self):
        protocol = MedianCounterProtocol(n_estimate=256)
        assert not protocol.wants_push(NodeState(node_id=1), 1)
        assert not protocol.wants_pull(NodeState(node_id=1), 1)

    def test_counter_increments_when_median_is_not_smaller(self):
        protocol = MedianCounterProtocol(n_estimate=256)
        states = StateTable(n=4, source=0)
        states[1].deliver(0)
        states.commit_round()
        caller, callee = states[0], states[1]
        protocol.wants_push(caller, 1)
        protocol.wants_push(callee, 1)
        protocol.on_channel_exchange(caller, callee, 1)
        protocol.on_round_committed(1, states, set())
        assert protocol.counter_of(0) == 2
        assert protocol.counter_of(1) == 2

    def test_counter_does_not_increment_without_exchanges(self):
        protocol = MedianCounterProtocol(n_estimate=256)
        states = StateTable(n=4, source=0)
        protocol.wants_push(informed_state(0), 1)
        protocol.on_round_committed(1, states, set())
        assert protocol.counter_of(0) == 1

    def test_node_reaches_state_c_then_d(self):
        protocol = MedianCounterProtocol(n_estimate=256)
        states = StateTable(n=2, source=0)
        states[1].deliver(0)
        states.commit_round()
        caller, callee = states[0], states[1]
        protocol.wants_push(caller, 1)
        protocol.wants_push(callee, 1)
        # Drive enough high-median exchanges to exhaust ctr_max, then state C.
        for round_index in range(1, protocol.ctr_max + 1):
            protocol.on_channel_exchange(caller, callee, round_index)
            protocol.on_round_committed(round_index, states, set())
        assert protocol.state_of(0) == "C"
        # After state_c_rounds further rounds the node goes quiet.
        first_d_round = protocol.ctr_max + protocol.state_c_rounds + 1
        for round_index in range(protocol.ctr_max + 1, first_d_round):
            protocol.on_round_committed(round_index, states, set())
        assert protocol.state_of(0) == "D"
        assert not protocol.wants_push(caller, 99)

    def test_finished_when_all_informed_nodes_are_quiet(self):
        protocol = MedianCounterProtocol(n_estimate=256)
        states = StateTable(n=2, source=0)
        protocol._ensure_tracked(0)
        protocol._state[0] = "D"
        assert protocol.finished(5, states)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MedianCounterProtocol(n_estimate=1)
        with pytest.raises(ConfigurationError):
            MedianCounterProtocol(n_estimate=256, fanout=0)
        with pytest.raises(ConfigurationError):
            MedianCounterProtocol(n_estimate=256, counter_rounds_factor=0)

    def test_describe_reports_counters(self):
        description = MedianCounterProtocol(n_estimate=1024).describe()
        assert description["ctr_max"] >= 1
        assert description["state_c_rounds"] >= 1


class TestEndToEnd:
    def test_self_termination_informs_everyone(self):
        graph = random_regular_graph(256, 8, RandomSource(seed=11))
        result = run_broadcast(
            graph,
            MedianCounterProtocol(n_estimate=256),
            seed=11,
            config=SimulationConfig(stop_when_informed=False),
        )
        assert result.success
        # The state machine stops the protocol before its hard horizon.
        assert result.rounds_executed < MedianCounterProtocol(n_estimate=256).horizon()

    def test_cheaper_than_naive_age_termination(self):
        graph = random_regular_graph(256, 8, RandomSource(seed=12))
        config = SimulationConfig(stop_when_informed=False)
        median = run_broadcast(
            graph, MedianCounterProtocol(n_estimate=256), seed=3, config=config
        )
        naive = run_broadcast(
            graph, PushPullProtocol(n_estimate=256), seed=3, config=config
        )
        assert median.success and naive.success
        assert median.total_transmissions < naive.total_transmissions

    def test_four_choice_variant_runs(self):
        graph = random_regular_graph(128, 8, RandomSource(seed=13))
        protocol = MedianCounterProtocol(n_estimate=128, fanout=4)
        assert protocol.name == "median-counter-4"
        result = run_broadcast(graph, protocol, seed=13)
        assert result.success
