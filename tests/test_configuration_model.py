"""Unit tests for the configuration-model graph generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import GraphGenerationError
from repro.core.rng import RandomSource
from repro.graphs.base import Graph
from repro.graphs.configuration_model import (
    _random_pairing,
    connected_random_regular_graph,
    pairing_multigraph,
    random_regular_graph,
    repair_to_simple,
    validate_regular_parameters,
)
from repro.graphs.properties import is_connected


class TestPairingDirectCsrBuild:
    """The permutation-inverse CSR build must match the edge-array build bit
    for bit: same CSR arrays, same generator stream afterwards."""

    @pytest.mark.parametrize("seed", [1, 7, 2008])
    @pytest.mark.parametrize("n,d", [(2, 1), (64, 3), (100, 4), (501, 6), (256, 16)])
    def test_bit_identical_to_edge_array_build(self, seed, n, d):
        direct_rng = RandomSource(seed=seed)
        direct = pairing_multigraph(n, d, direct_rng)

        reference_rng = RandomSource(seed=seed)
        stubs = _random_pairing(n, d, reference_rng)
        reference = Graph.from_edge_array(n, stubs.reshape(-1, 2))

        assert np.array_equal(direct.csr()[0], reference.csr()[0])
        assert np.array_equal(direct.csr()[1], reference.csr()[1])
        assert direct.edge_count == reference.edge_count
        # Both paths must consume the identical amount of randomness.
        probe = 2**31
        assert direct_rng.generator.integers(0, probe) == reference_rng.generator.integers(0, probe)

    def test_materialised_adjacency_matches_csr(self):
        graph = pairing_multigraph(50, 4, RandomSource(seed=5))
        indptr, indices = graph.csr()
        for node in range(50):
            assert graph.neighbors(node) == list(indices[indptr[node]:indptr[node + 1]])


class TestValidation:
    def test_odd_nd_rejected(self):
        with pytest.raises(GraphGenerationError):
            validate_regular_parameters(5, 3)

    def test_degree_at_least_one(self):
        with pytest.raises(GraphGenerationError):
            validate_regular_parameters(10, 0)

    def test_degree_below_n(self):
        with pytest.raises(GraphGenerationError):
            validate_regular_parameters(4, 4)

    def test_minimum_nodes(self):
        with pytest.raises(GraphGenerationError):
            validate_regular_parameters(1, 1)

    def test_valid_parameters_pass(self):
        validate_regular_parameters(10, 3)
        validate_regular_parameters(9, 4)


class TestPairingMultigraph:
    def test_every_node_has_degree_d(self, rng):
        graph = pairing_multigraph(30, 4, rng)
        assert all(degree == 4 for degree in graph.degrees().values())

    def test_edge_count_matches(self, rng):
        graph = pairing_multigraph(20, 6, rng)
        assert graph.edge_count == 20 * 6 // 2

    def test_deterministic_for_same_seed(self):
        a = pairing_multigraph(16, 3, RandomSource(seed=9))
        b = pairing_multigraph(16, 3, RandomSource(seed=9))
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_parameters_raise(self, rng):
        with pytest.raises(GraphGenerationError):
            pairing_multigraph(5, 3, rng)


class TestRepairToSimple:
    def test_repairs_self_loop(self, rng):
        edges = np.array([[0, 0], [1, 2], [3, 4], [5, 6]])
        repaired = repair_to_simple(edges, rng)
        assert all(u != v for u, v in repaired)

    def test_repairs_duplicate_edge(self, rng):
        edges = np.array([[0, 1], [0, 1], [2, 3], [4, 5]])
        repaired = repair_to_simple(edges, rng)
        keys = {tuple(sorted(edge)) for edge in repaired.tolist()}
        assert len(keys) == len(repaired)

    def test_preserves_degree_sequence(self, rng):
        edges = np.array([[0, 0], [0, 1], [1, 2], [2, 3], [3, 4], [4, 5]])
        before = np.bincount(edges.flatten(), minlength=6)
        repaired = repair_to_simple(edges, rng)
        after = np.bincount(repaired.flatten(), minlength=6)
        assert np.array_equal(before, after)

    def test_already_simple_is_unchanged(self, rng):
        edges = np.array([[0, 1], [2, 3]])
        repaired = repair_to_simple(edges, rng)
        assert np.array_equal(repaired, edges)


class TestRandomRegularGraph:
    @pytest.mark.parametrize("strategy", ["rejection", "repair", "networkx", "auto"])
    def test_all_strategies_produce_simple_regular_graphs(self, strategy):
        rng = RandomSource(seed=5)
        d = 3 if strategy == "rejection" else 6
        graph = random_regular_graph(60, d, rng, strategy=strategy)
        assert graph.is_simple()
        assert all(degree == d for degree in graph.degrees().values())

    def test_non_simple_mode_allows_multigraph(self):
        rng = RandomSource(seed=5)
        graph = random_regular_graph(40, 8, rng, simple=False)
        assert all(degree == 8 for degree in graph.degrees().values())

    def test_unknown_strategy_rejected(self, rng):
        with pytest.raises(GraphGenerationError):
            random_regular_graph(20, 4, rng, strategy="quantum")

    def test_rejection_gives_up_for_large_degree(self, rng):
        with pytest.raises(GraphGenerationError):
            random_regular_graph(64, 16, rng, strategy="rejection", max_attempts=2)

    def test_different_seeds_give_different_graphs(self):
        a = random_regular_graph(64, 4, RandomSource(seed=1))
        b = random_regular_graph(64, 4, RandomSource(seed=2))
        assert sorted(a.edges()) != sorted(b.edges())

    def test_same_seed_reproducible(self):
        a = random_regular_graph(64, 6, RandomSource(seed=77))
        b = random_regular_graph(64, 6, RandomSource(seed=77))
        assert sorted(a.edges()) == sorted(b.edges())


class TestConnectedRandomRegularGraph:
    def test_result_is_connected(self):
        graph = connected_random_regular_graph(128, 4, RandomSource(seed=4))
        assert is_connected(graph)

    def test_result_is_regular_and_simple(self):
        graph = connected_random_regular_graph(100, 6, RandomSource(seed=4))
        assert graph.is_simple()
        assert all(degree == 6 for degree in graph.degrees().values())


class TestVectorizedRepair:
    """The array-based repair pass: stress beyond the tiny fixtures."""

    def test_repairs_dense_pairing_to_simple(self):
        rng = RandomSource(seed=11)
        graph = random_regular_graph(256, 12, rng, strategy="repair")
        assert graph.is_simple()
        assert all(degree == 12 for degree in graph.degrees().values())

    def test_many_bad_edges_converge(self):
        # A pathological multiset: several loops and duplicate clusters.
        edges = np.array(
            [[0, 0], [1, 1], [2, 3], [2, 3], [2, 3], [4, 5], [4, 5], [6, 7],
             [8, 9], [10, 11], [12, 13], [14, 15], [0, 2], [1, 3]]
        )
        before = np.bincount(edges.flatten(), minlength=16)
        repaired = repair_to_simple(edges, RandomSource(seed=3))
        after = np.bincount(repaired.flatten(), minlength=16)
        assert np.array_equal(before, after)
        assert all(u != v for u, v in repaired)
        keys = {tuple(sorted(edge)) for edge in repaired.tolist()}
        assert len(keys) == len(repaired)

    def test_repair_deterministic_for_same_seed(self):
        edges = np.array([[0, 0], [1, 2], [1, 2], [3, 4], [5, 6], [0, 3]])
        one = repair_to_simple(edges, RandomSource(seed=5))
        two = repair_to_simple(edges, RandomSource(seed=5))
        assert np.array_equal(one, two)

    def test_input_array_is_not_mutated(self):
        edges = np.array([[0, 0], [1, 2], [3, 4], [5, 6]])
        snapshot = edges.copy()
        repair_to_simple(edges, RandomSource(seed=1))
        assert np.array_equal(edges, snapshot)
