"""Tests for experiment-table persistence (JSON / CSV)."""

from __future__ import annotations

import csv
import json

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.results_io import (
    load_table_json,
    save_table,
    save_table_csv,
    save_table_json,
)
from repro.experiments.tables import Table


@pytest.fixture
def sample_table() -> Table:
    table = Table(title="Sample", columns=["n", "rounds", "ok"])
    table.add_row(n=256, rounds=9.5, ok=True)
    table.add_row(n=512, rounds=10.0, ok=False)
    table.add_note("a note")
    return table


class TestJsonRoundTrip:
    def test_save_and_load(self, sample_table, tmp_path):
        path = save_table_json(sample_table, tmp_path / "table.json")
        loaded = load_table_json(path)
        assert loaded.title == sample_table.title
        assert loaded.columns == sample_table.columns
        assert loaded.to_records() == sample_table.to_records()
        assert loaded.notes == sample_table.notes

    def test_json_is_human_readable(self, sample_table, tmp_path):
        path = save_table_json(sample_table, tmp_path / "table.json")
        payload = json.loads(path.read_text())
        assert payload["title"] == "Sample"
        assert payload["rows"][0]["n"] == 256

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_table_json(tmp_path / "does-not-exist.json")

    def test_load_invalid_payload(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"title": "x"}))
        with pytest.raises(ExperimentError):
            load_table_json(bad)
        bad.write_text("{not json")
        with pytest.raises(ExperimentError):
            load_table_json(bad)


class TestCsv:
    def test_save_csv_rows(self, sample_table, tmp_path):
        path = save_table_csv(sample_table, tmp_path / "table.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["n"] == "256"
        assert rows[1]["ok"] == "False"


class TestDispatch:
    def test_save_by_extension(self, sample_table, tmp_path):
        json_path = save_table(sample_table, tmp_path / "t.json")
        csv_path = save_table(sample_table, tmp_path / "t.csv")
        assert json_path.exists() and csv_path.exists()

    def test_unknown_extension_rejected(self, sample_table, tmp_path):
        with pytest.raises(ExperimentError):
            save_table(sample_table, tmp_path / "t.xlsx")


class TestCliSave:
    def test_simulate_save_json(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "run.json"
        exit_code = main(
            [
                "simulate",
                "--n",
                "128",
                "--d",
                "6",
                "--protocol",
                "push",
                "--seeds",
                "1",
                "--save",
                str(target),
            ]
        )
        assert exit_code == 0
        assert target.exists()
        loaded = load_table_json(target)
        assert loaded.rows
