"""Tests for experiment-table persistence (JSON / CSV)."""

from __future__ import annotations

import csv
import json

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.results_io import (
    SCHEMA_VERSION,
    ResultsIOError,
    load_table_json,
    save_table,
    save_table_csv,
    save_table_json,
)
from repro.experiments.tables import Table


@pytest.fixture
def sample_table() -> Table:
    table = Table(title="Sample", columns=["n", "rounds", "ok"])
    table.add_row(n=256, rounds=9.5, ok=True)
    table.add_row(n=512, rounds=10.0, ok=False)
    table.add_note("a note")
    return table


class TestJsonRoundTrip:
    def test_save_and_load(self, sample_table, tmp_path):
        path = save_table_json(sample_table, tmp_path / "table.json")
        loaded = load_table_json(path)
        assert loaded.title == sample_table.title
        assert loaded.columns == sample_table.columns
        assert loaded.to_records() == sample_table.to_records()
        assert loaded.notes == sample_table.notes

    def test_json_is_human_readable(self, sample_table, tmp_path):
        path = save_table_json(sample_table, tmp_path / "table.json")
        payload = json.loads(path.read_text())
        assert payload["title"] == "Sample"
        assert payload["rows"][0]["n"] == 256

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_table_json(tmp_path / "does-not-exist.json")

    def test_load_invalid_payload(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"title": "x"}))
        with pytest.raises(ExperimentError):
            load_table_json(bad)
        bad.write_text("{not json")
        with pytest.raises(ExperimentError):
            load_table_json(bad)


class TestResultsIOError:
    """Every load failure is a typed ResultsIOError naming the path."""

    def test_truncated_json_names_the_path(self, sample_table, tmp_path):
        path = save_table_json(sample_table, tmp_path / "table.json")
        data = path.read_text()
        path.write_text(data[: len(data) // 2])  # torn write / partial copy
        with pytest.raises(ResultsIOError) as excinfo:
            load_table_json(path)
        assert excinfo.value.path == str(path)
        assert str(path) in str(excinfo.value)

    def test_missing_file_names_the_path(self, tmp_path):
        missing = tmp_path / "does-not-exist.json"
        with pytest.raises(ResultsIOError) as excinfo:
            load_table_json(missing)
        assert excinfo.value.path == str(missing)

    def test_subclasses_experiment_error_for_compatibility(self, tmp_path):
        assert issubclass(ResultsIOError, ExperimentError)
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")  # valid JSON, wrong shape
        with pytest.raises(ResultsIOError, match="JSON object"):
            load_table_json(bad)

    def test_future_schema_raises_typed_error(self, sample_table, tmp_path):
        path = save_table_json(sample_table, tmp_path / "table.json")
        payload = json.loads(path.read_text())
        payload["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ResultsIOError) as excinfo:
            load_table_json(path)
        assert excinfo.value.path == str(path)


class TestSchemaVersioning:
    def test_saved_tables_carry_schema_version(self, sample_table, tmp_path):
        path = save_table_json(sample_table, tmp_path / "t.json")
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["metadata"] == {}

    def test_metadata_round_trips(self, sample_table, tmp_path):
        sample_table.metadata["spec"] = {"name": "demo"}
        path = save_table_json(sample_table, tmp_path / "t.json")
        assert load_table_json(path).metadata == {"spec": {"name": "demo"}}

    def test_distributed_provenance_round_trips_and_stays_optional(
        self, sample_table, tmp_path
    ):
        # Tables from parallel sweeps carry a free-form provenance block in
        # metadata["distributed"]; it is schema-transparent, so v2 records
        # with and without it (and v1 records predating metadata entirely)
        # must all keep loading.
        provenance = {"workers": 4, "shard": [1, 4], "wall_clock_seconds": 1.5}
        sample_table.metadata["distributed"] = provenance
        path = save_table_json(sample_table, tmp_path / "dist.json")
        assert load_table_json(path).metadata["distributed"] == provenance

        plain = tmp_path / "plain.json"
        plain.write_text(
            json.dumps({"schema_version": 2, "columns": ["n"], "rows": [{"n": 1}]})
        )
        assert load_table_json(plain).metadata == {}

    def test_version1_record_without_schema_version_loads(self, tmp_path):
        legacy = tmp_path / "legacy.json"
        legacy.write_text(
            json.dumps(
                {
                    "title": "Old",
                    "columns": ["n"],
                    "rows": [{"n": 1}],
                    "notes": ["legacy note"],
                }
            )
        )
        table = load_table_json(legacy)
        assert table.title == "Old"
        assert table.metadata == {}
        assert table.notes == ["legacy note"]

    def test_drifted_row_keys_extend_columns_instead_of_raising(self, tmp_path):
        drifted = tmp_path / "drifted.json"
        drifted.write_text(
            json.dumps(
                {
                    "columns": ["n"],
                    "rows": [{"n": 1, "added_later": True}, {"n": 2}],
                }
            )
        )
        table = load_table_json(drifted)
        assert table.columns == ["n", "added_later"]
        assert table.rows[0]["added_later"] is True
        assert table.title == ""

    def test_missing_columns_inferred_from_rows(self, tmp_path):
        no_columns = tmp_path / "nocols.json"
        no_columns.write_text(json.dumps({"rows": [{"a": 1, "b": 2}]}))
        table = load_table_json(no_columns)
        assert table.columns == ["a", "b"]

    def test_future_schema_version_rejected_with_clear_message(self, tmp_path):
        future = tmp_path / "future.json"
        future.write_text(
            json.dumps({"schema_version": SCHEMA_VERSION + 1, "rows": []})
        )
        with pytest.raises(ExperimentError, match="schema version"):
            load_table_json(future)

    def test_invalid_schema_version_rejected(self, tmp_path):
        bad = tmp_path / "bad-version.json"
        bad.write_text(json.dumps({"schema_version": "two", "rows": []}))
        with pytest.raises(ExperimentError, match="schema_version"):
            load_table_json(bad)

    def test_non_mapping_row_rejected_with_experiment_error(self, tmp_path):
        bad = tmp_path / "bad-row.json"
        bad.write_text(json.dumps({"columns": ["n"], "rows": [[1, 2]]}))
        with pytest.raises(ExperimentError, match="non-mapping row"):
            load_table_json(bad)


class TestCsv:
    def test_save_csv_rows(self, sample_table, tmp_path):
        path = save_table_csv(sample_table, tmp_path / "table.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["n"] == "256"
        assert rows[1]["ok"] == "False"


class TestDispatch:
    def test_save_by_extension(self, sample_table, tmp_path):
        json_path = save_table(sample_table, tmp_path / "t.json")
        csv_path = save_table(sample_table, tmp_path / "t.csv")
        assert json_path.exists() and csv_path.exists()

    def test_unknown_extension_rejected(self, sample_table, tmp_path):
        with pytest.raises(ExperimentError):
            save_table(sample_table, tmp_path / "t.xlsx")


class TestCliSave:
    def test_simulate_save_json(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "run.json"
        exit_code = main(
            [
                "simulate",
                "--n",
                "128",
                "--d",
                "6",
                "--protocol",
                "push",
                "--seeds",
                "1",
                "--save",
                str(target),
            ]
        )
        assert exit_code == 0
        assert target.exists()
        loaded = load_table_json(target)
        assert loaded.rows
