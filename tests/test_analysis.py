"""Unit tests for repro.analysis (bounds, scaling fits, statistics)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bounds import (
    algorithm1_transmission_bound,
    fountoulakis_panagiotou_constant,
    karp_phase_estimates,
    lower_bound_transmissions,
    pull_endgame_rounds,
    push_round_estimate,
    push_transmission_estimate,
)
from repro.analysis.scaling import (
    GROWTH_LAWS,
    best_scaling_law,
    compare_scaling_laws,
    fit_scaling_law,
)
from repro.analysis.stats import (
    Summary,
    confidence_interval,
    mean,
    median,
    percentile,
    std,
)
from repro.core.errors import ConfigurationError


class TestBounds:
    def test_lower_bound_formula(self):
        assert lower_bound_transmissions(1024, 2) == pytest.approx(1024 * 10)
        assert lower_bound_transmissions(1024, 32) == pytest.approx(1024 * 2)

    def test_lower_bound_decreases_with_degree(self):
        assert lower_bound_transmissions(4096, 4) > lower_bound_transmissions(4096, 16)

    def test_lower_bound_constant_scales(self):
        assert lower_bound_transmissions(256, 4, constant=2.0) == pytest.approx(
            2 * lower_bound_transmissions(256, 4)
        )

    def test_lower_bound_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            lower_bound_transmissions(1, 4)
        with pytest.raises(ConfigurationError):
            lower_bound_transmissions(100, 1)

    def test_algorithm1_bound_grows_like_n_loglog(self):
        small = algorithm1_transmission_bound(2**10)
        large = algorithm1_transmission_bound(2**20)
        # Per-node cost grows by one phase-2 unit when log log n gains one.
        assert large / 2**20 - small / 2**10 == pytest.approx(4.0, abs=1e-6)

    def test_push_estimates_monotone(self):
        assert push_round_estimate(2048) > push_round_estimate(256)
        assert push_transmission_estimate(2048) > push_transmission_estimate(256)

    def test_fountoulakis_panagiotou_constant(self):
        # C_d decreases towards the complete-graph constant as d grows.
        c4 = fountoulakis_panagiotou_constant(4)
        c64 = fountoulakis_panagiotou_constant(64)
        assert c4 > c64 > 1.0
        with pytest.raises(ConfigurationError):
            fountoulakis_panagiotou_constant(1)

    def test_pull_endgame_rounds(self):
        assert pull_endgame_rounds(4096, 8) == pytest.approx(math.log(4096) / math.log(8))
        assert pull_endgame_rounds(4096, 64) < pull_endgame_rounds(4096, 8)

    def test_karp_phase_estimates(self):
        estimates = karp_phase_estimates(1 << 16)
        assert estimates["rounds_to_half"] == pytest.approx(16.0)
        assert estimates["pull_tail_rounds"] < estimates["push_tail_rounds"]


class TestScalingFits:
    def test_recovers_a_log_law(self):
        sizes = [2**k for k in range(8, 16)]
        values = [3.0 + 2.0 * math.log2(n) for n in sizes]
        fit = fit_scaling_law(sizes, values, "log")
        assert fit.slope == pytest.approx(2.0, abs=1e-6)
        assert fit.intercept == pytest.approx(3.0, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_a_loglog_law(self):
        sizes = [2**k for k in range(8, 20)]
        values = [1.0 + 5.0 * math.log2(math.log2(n)) for n in sizes]
        fit = fit_scaling_law(sizes, values, "loglog")
        assert fit.slope == pytest.approx(5.0, abs=1e-6)

    def test_constant_law_uses_mean(self):
        fit = fit_scaling_law([10, 100, 1000], [4.0, 6.0, 8.0], "constant")
        assert fit.slope == 0.0
        assert fit.intercept == pytest.approx(6.0)

    def test_best_law_identifies_generator(self):
        sizes = [2**k for k in range(8, 18)]
        log_values = [1.0 + 2.0 * math.log2(n) for n in sizes]
        loglog_values = [1.0 + 2.0 * math.log2(math.log2(n)) for n in sizes]
        assert best_scaling_law(sizes, log_values).law == "log"
        assert best_scaling_law(sizes, loglog_values).law == "loglog"

    def test_compare_orders_by_residual(self):
        sizes = [2**k for k in range(8, 14)]
        values = [float(k) for k in range(8, 14)]
        fits = compare_scaling_laws(sizes, values)
        residuals = [fit.residual_rms for fit in fits]
        assert residuals == sorted(residuals)

    def test_predict_round_trip(self):
        fit = fit_scaling_law([256, 1024, 4096], [8.0, 10.0, 12.0], "log")
        assert fit.predict(1024) == pytest.approx(10.0, abs=1e-6)

    def test_unknown_law_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_scaling_law([1, 2], [1.0, 2.0], "exponential")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_scaling_law([1, 2, 3], [1.0], "log")

    def test_single_point_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_scaling_law([10], [1.0], "log")

    def test_all_growth_laws_are_callable(self):
        for law, transform in GROWTH_LAWS.items():
            assert isinstance(transform(1024.0), float), law


class TestStats:
    def test_mean_std_median(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert mean(values) == 2.5
        assert std(values) == pytest.approx(math.sqrt(1.25))
        assert median(values) == 2.5
        assert median([5.0, 1.0, 3.0]) == 3.0

    def test_percentile_interpolation(self):
        values = [0.0, 10.0]
        assert percentile(values, 0) == 0.0
        assert percentile(values, 100) == 10.0
        assert percentile(values, 50) == 5.0
        assert percentile([7.0], 90) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 150)
        with pytest.raises(ConfigurationError):
            percentile([], 50)

    def test_empty_sequences_rejected(self):
        for function in (mean, std, median):
            with pytest.raises(ConfigurationError):
                function([])

    def test_confidence_interval_contains_mean(self):
        values = [10.0, 12.0, 9.0, 11.0, 13.0]
        low, high = confidence_interval(values)
        assert low < mean(values) < high

    def test_confidence_interval_single_value(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)

    def test_summary(self):
        summary = Summary.of([2.0, 4.0, 6.0])
        assert summary.mean == 4.0
        assert summary.minimum == 2.0
        assert summary.maximum == 6.0
        assert summary.count == 3
        with pytest.raises(ConfigurationError):
            Summary.of([])
