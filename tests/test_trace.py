"""Unit tests for repro.core.trace."""

from __future__ import annotations

from repro.core.trace import NullTracer, RecordingTracer


class TestNullTracer:
    def test_all_hooks_are_noops(self):
        tracer = NullTracer()
        tracer.on_round_start(1, 1)
        tracer.on_channel_open(1, 0, 1)
        tracer.on_transmission(1, 0, 1, "push", False)
        tracer.on_node_informed(1, 1)
        tracer.on_round_end(1, 2)


class TestRecordingTracer:
    def test_records_all_event_kinds(self):
        tracer = RecordingTracer()
        tracer.on_round_start(1, 1)
        tracer.on_channel_open(1, 0, 1)
        tracer.on_transmission(1, 0, 1, "push", lost=False)
        tracer.on_transmission(1, 1, 0, "pull", lost=True)
        tracer.on_node_informed(1, 1)
        tracer.on_round_end(1, 2)
        kinds = [event.kind for event in tracer.events]
        assert kinds == [
            "round_start",
            "channel",
            "transmission",
            "transmission",
            "informed",
            "round_end",
        ]

    def test_lost_transmissions_are_annotated(self):
        tracer = RecordingTracer()
        tracer.on_transmission(1, 0, 1, "pull", lost=True)
        assert tracer.events[0].detail == "pull:lost"

    def test_events_of_kind_filters(self):
        tracer = RecordingTracer()
        tracer.on_round_start(1, 1)
        tracer.on_round_end(1, 1)
        tracer.on_round_start(2, 1)
        assert len(tracer.events_of_kind("round_start")) == 2
        assert len(tracer.events_of_kind("round_end")) == 1
        assert tracer.events_of_kind("informed") == []
