"""Crash-safety suite for the streaming result sink (repro.dist.sink).

The contract under test: a sweep streamed to disk and killed at **any byte
offset** — torn write, full disk, failed fsync, ``kill -9`` — resumes from
exactly the records that reached the disk and produces results (and tables)
bit-identical to the clean serial run.  The truncation sweep below is
exhaustive: every byte offset of a multi-record segment is torn once and
must recover to a clean record boundary.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.errors import ConfigurationError
from repro.dist import (
    CheckpointStore,
    SINK_SCHEMA,
    SinkError,
    SinkFullError,
    StreamingResultSink,
    merge_streams,
    point_run_from_payload,
    stream_payloads,
    streamed_table,
)
from repro.dist.durability import atomic_write_text
from repro.dist.sink import encode_record, iter_records, scan_segment
from repro.faultinject import (
    FaultPlan,
    FaultRule,
    bundled_stream_plans,
    save_plan,
)
from repro.spec import run_spec, save_spec

from test_dist import assert_bit_identical, sweep_spec


def fake_payload(index: int) -> dict:
    """A tiny sink payload: the sink only requires an 'index' key."""
    return {"index": index, "label": f"p{index}", "pad": "x" * 10}


def make_segment_dir(tmp_path, count: int = 3) -> tuple:
    """A stream directory holding one clean segment of ``count`` records."""
    spec = sweep_spec()
    sink = StreamingResultSink(tmp_path, spec, durable=False)
    boundaries = [0]
    for i in range(count):
        _, _, end = sink.append(fake_payload(i))
        boundaries.append(end)
    sink.close()
    (segment,) = sorted(tmp_path.glob("segment-*.jsonl"))
    return spec, segment, boundaries


class TestRecordFraming:
    def test_round_trip_through_a_file(self, tmp_path):
        path = tmp_path / "seg.jsonl"
        payloads = [fake_payload(i) for i in range(3)]
        path.write_bytes(b"".join(encode_record(p) for p in payloads))
        read = list(iter_records(path))
        assert [r["index"] for r in read] == [0, 1, 2]
        for original, record in zip(payloads, read):
            assert record["schema_version"] == SINK_SCHEMA
            assert record["pad"] == original["pad"]

    def test_header_is_fixed_width_and_self_describing(self):
        record = encode_record(fake_payload(7))
        header, body = record[:18], record[18:-1]
        length, crc = header.split()
        assert len(header) == 18 and record.endswith(b"\n")
        assert int(length, 16) == len(body)
        import zlib

        assert int(crc, 16) == zlib.crc32(body) & 0xFFFFFFFF

    def test_torn_record_fails_strict_iteration(self, tmp_path):
        path = tmp_path / "seg.jsonl"
        data = encode_record(fake_payload(0))
        path.write_bytes(data[:-5])
        with pytest.raises(SinkError, match="torn or corrupt"):
            list(iter_records(path))

    def test_newer_schema_version_rejected(self, tmp_path):
        body = json.dumps(
            {"schema_version": SINK_SCHEMA + 1, "index": 0},
            separators=(",", ":"),
        ).encode()
        import zlib

        header = b"%08x %08x " % (len(body), zlib.crc32(body) & 0xFFFFFFFF)
        path = tmp_path / "seg.jsonl"
        path.write_bytes(header + body + b"\n")
        with pytest.raises(SinkError, match="schema"):
            list(iter_records(path))


class TestTruncationSweep:
    """Tear a segment at EVERY byte offset; recovery must be exact."""

    def test_scan_finds_the_exact_boundary_at_every_offset(self, tmp_path):
        _, segment, boundaries = make_segment_dir(tmp_path / "clean")
        data = segment.read_bytes()
        assert boundaries[-1] == len(data)
        torn = tmp_path / "torn.jsonl"
        for offset in range(len(data) + 1):
            torn.write_bytes(data[:offset])
            complete = [b for b in boundaries[1:] if b <= offset]
            indices, valid_end, is_torn = scan_segment(torn)
            assert indices == list(range(len(complete))), offset
            assert valid_end == max([0] + complete), offset
            assert is_torn == (offset not in boundaries), offset

    def test_sink_recovery_repairs_every_offset(self, tmp_path):
        # Recovery must truncate to the boundary, quarantine the torn bytes,
        # and leave a directory that appends and merges cleanly — for a tear
        # at every single byte offset of the segment.
        spec = sweep_spec()
        _, reference, boundaries = make_segment_dir(tmp_path / "ref")
        data = reference.read_bytes()
        for offset in range(len(data) + 1):
            directory = tmp_path / f"at-{offset:05d}"
            directory.mkdir()
            seed_sink = StreamingResultSink(directory, spec, durable=False)
            for i in range(3):
                seed_sink.append(fake_payload(i))
            seed_sink.close()
            (segment,) = sorted(directory.glob("segment-*.jsonl"))
            with segment.open("rb+") as handle:
                handle.truncate(offset)
            sink = StreamingResultSink(
                directory, spec, durable=False, resume=True
            )
            survivors = sum(1 for b in boundaries[1:] if b <= offset)
            assert sorted(sink.recovered_indices) == list(range(survivors))
            assert segment.stat().st_size in boundaries
            torn_file = segment.with_name(segment.name + ".torn")
            assert torn_file.exists() == (offset not in boundaries)
            # The repaired directory is immediately usable again.
            for i in range(survivors, 3):
                sink.append(fake_payload(i))
            sink.close()
            merged = [r["index"] for r in sink.iter_merged()]
            assert merged == [0, 1, 2]


class TestSinkBasics:
    def test_refuses_populated_directory_without_resume(self, tmp_path):
        spec, _, _ = make_segment_dir(tmp_path)
        with pytest.raises(ConfigurationError, match="resume"):
            StreamingResultSink(tmp_path, spec, durable=False)

    def test_resume_of_an_empty_directory_is_a_fresh_start(self, tmp_path):
        sink = StreamingResultSink(
            tmp_path, sweep_spec(), durable=False, resume=True
        )
        assert sink.recovered_indices == frozenset()
        sink.append(fake_payload(0))
        sink.close()

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        make_segment_dir(tmp_path)
        with pytest.raises(ConfigurationError, match="fingerprint"):
            StreamingResultSink(
                tmp_path, sweep_spec(master_seed=99), durable=False, resume=True
            )

    def test_manifest_is_written_ahead_of_the_first_byte(self, tmp_path):
        spec = sweep_spec()
        sink = StreamingResultSink(tmp_path, spec, durable=False)
        sink.append(fake_payload(0))
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["schema_version"] == SINK_SCHEMA
        assert manifest["segments"] == ["segment-0000.jsonl"]
        sink.close()

    def test_out_of_order_appends_roll_sorted_segments(self, tmp_path):
        spec = sweep_spec()
        sink = StreamingResultSink(tmp_path, spec, durable=False)
        for index in [2, 0, 1, 3]:  # parallel completion order
            sink.append(fake_payload(index))
        sink.close()
        segments = sorted(tmp_path.glob("segment-*.jsonl"))
        assert len(segments) == 2  # 2 ascending runs: [2], [0,1,3] -> rolled
        for segment in segments:
            indices = [r["index"] for r in iter_records(segment)]
            assert indices == sorted(indices)
        assert [r["index"] for r in merge_streams(segments)] == [0, 1, 2, 3]

    def test_append_after_close_raises(self, tmp_path):
        sink = StreamingResultSink(tmp_path, sweep_spec(), durable=False)
        sink.close()
        with pytest.raises(SinkError, match="closed"):
            sink.append(fake_payload(0))

    def test_tagged_sinks_share_a_directory(self, tmp_path):
        spec = sweep_spec()
        for tag, indices in [("0of2", [0, 1]), ("1of2", [2, 3])]:
            sink = StreamingResultSink(tmp_path, spec, durable=False, tag=tag)
            for index in indices:
                sink.append(fake_payload(index))
            sink.close()
        assert (tmp_path / "manifest-0of2.json").exists()
        assert (tmp_path / "manifest-1of2.json").exists()
        merged = [r["index"] for r in stream_payloads(tmp_path, spec)]
        assert merged == [0, 1, 2, 3]

    def test_stream_payloads_checks_the_fingerprint(self, tmp_path):
        make_segment_dir(tmp_path)
        with pytest.raises(ConfigurationError, match="fingerprint"):
            list(stream_payloads(tmp_path, sweep_spec(master_seed=99)))

    def test_stream_payloads_requires_a_manifest(self, tmp_path):
        with pytest.raises(SinkError, match="manifest"):
            stream_payloads(tmp_path)

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="fsync_every"):
            StreamingResultSink(tmp_path, sweep_spec(), fsync_every=0)
        with pytest.raises(ConfigurationError, match="tag"):
            StreamingResultSink(tmp_path, sweep_spec(), tag="bad/tag")

    def test_stats_are_json_safe(self, tmp_path):
        sink = StreamingResultSink(tmp_path, sweep_spec(), durable=False)
        sink.append(fake_payload(0))
        sink.close()
        stats = json.loads(json.dumps(sink.stats()))
        assert stats["records_appended"] == 1
        assert stats["segments"] == 1


class TestMergeStreams:
    def test_duplicate_index_across_segments_rejected(self, tmp_path):
        for name in ("a.jsonl", "b.jsonl"):
            (tmp_path / name).write_bytes(encode_record(fake_payload(5)))
        with pytest.raises(SinkError, match="more than one"):
            list(merge_streams(sorted(tmp_path.glob("*.jsonl"))))

    def test_non_ascending_segment_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_bytes(
            encode_record(fake_payload(3)) + encode_record(fake_payload(1))
        )
        with pytest.raises(SinkError, match="ascending"):
            list(merge_streams([path]))

    def test_merge_is_a_true_k_way_interleave(self, tmp_path):
        runs = [[0, 3, 6], [1, 4, 7], [2, 5, 8]]
        paths = []
        for i, run in enumerate(runs):
            path = tmp_path / f"run-{i}.jsonl"
            path.write_bytes(
                b"".join(encode_record(fake_payload(j)) for j in run)
            )
            paths.append(path)
        assert [r["index"] for r in merge_streams(paths)] == list(range(9))


class TestStreamingExecution:
    def test_streamed_run_is_bit_identical_to_serial(self, tmp_path):
        spec = sweep_spec()
        serial = run_spec(spec)
        streamed = run_spec(spec, stream_dir=tmp_path, stream_durable=False)
        assert_bit_identical(serial, streamed)
        stream = streamed.provenance["stream"]
        assert stream["records_appended"] == 4
        assert stream["durable"] is False

    def test_parallel_streamed_run_is_bit_identical(self, tmp_path):
        spec = sweep_spec()
        serial = run_spec(spec)
        streamed = run_spec(
            spec, workers=2, stream_dir=tmp_path, stream_durable=False
        )
        assert_bit_identical(serial, streamed)

    def test_durable_default_fsyncs_every_record(self, tmp_path):
        run = run_spec(sweep_spec(), stream_dir=tmp_path)
        assert run.provenance["stream"]["durable"] is True
        assert run.provenance["stream"]["fsync_calls"] >= 4

    def test_fsync_cadence_reduces_fsync_calls(self, tmp_path):
        run = run_spec(sweep_spec(), stream_dir=tmp_path, fsync_every=4)
        assert run.provenance["stream"]["fsync_calls"] <= 2

    def test_full_stream_resume_runs_nothing(self, tmp_path):
        spec = sweep_spec()
        first = run_spec(spec, stream_dir=tmp_path, stream_durable=False)
        events = []
        again = run_spec(
            spec,
            stream_dir=tmp_path,
            stream_durable=False,
            resume=True,
            progress=events.append,
        )
        assert_bit_identical(first, again)
        assert again.provenance["points_run"] == 0
        assert again.provenance["points_resumed"] == 4
        assert {e.source for e in events} == {"stream"}

    def test_reusing_a_stream_dir_without_resume_is_refused(self, tmp_path):
        spec = sweep_spec()
        run_spec(spec, stream_dir=tmp_path, stream_durable=False)
        with pytest.raises(ConfigurationError, match="resume"):
            run_spec(spec, stream_dir=tmp_path, stream_durable=False)

    @pytest.mark.parametrize("cut_record", [0, 1, 3])
    def test_resume_after_torn_tail_is_bit_identical(self, tmp_path, cut_record):
        # Tear the stream so that records > cut_record are gone and
        # cut_record itself is torn mid-record; the resume must re-run
        # exactly the missing points and match the serial run bit-for-bit.
        spec = sweep_spec()
        serial = run_spec(spec)
        run_spec(spec, stream_dir=tmp_path, stream_durable=False)
        (segment,) = sorted(tmp_path.glob("segment-*.jsonl"))
        boundaries = [0]
        with segment.open("rb") as handle:
            while True:
                header = handle.read(18)
                if not header:
                    break
                handle.seek(int(header[:8], 16) + 1, os.SEEK_CUR)
                boundaries.append(handle.tell())
        with segment.open("rb+") as handle:
            handle.truncate(boundaries[cut_record] + 9)  # mid-header tear
        resumed = run_spec(
            spec, stream_dir=tmp_path, stream_durable=False, resume=True
        )
        assert_bit_identical(serial, resumed)
        assert resumed.provenance["points_resumed"] == cut_record
        assert resumed.provenance["points_run"] == 4 - cut_record
        assert segment.with_name(segment.name + ".torn").exists()

    def test_checkpointed_points_replay_into_the_stream(self, tmp_path):
        # Points that reached the checkpoint store but not the stream are
        # replayed into the sink without re-execution.
        spec = sweep_spec()
        serial = run_spec(spec)
        checkpoints = tmp_path / "ckpt"
        stream = tmp_path / "stream"
        run_spec(spec, points=slice(0, 2), checkpoint_dir=checkpoints)
        events = []
        resumed = run_spec(
            spec,
            checkpoint_dir=checkpoints,
            stream_dir=stream,
            stream_durable=False,
            resume=True,
            progress=events.append,
        )
        assert_bit_identical(serial, resumed)
        by_source = {e.index: e.source for e in events}
        assert by_source == {0: "checkpoint", 1: "checkpoint", 2: "run", 3: "run"}
        # The replayed points are durable stream records now.
        assert [r["index"] for r in stream_payloads(stream, spec)] == [0, 1, 2, 3]

    def test_streamed_table_matches_in_memory_table(self, tmp_path):
        spec = sweep_spec()
        serial_table = run_spec(spec).to_table()
        run_spec(spec, stream_dir=tmp_path, stream_durable=False)
        table = streamed_table(spec, tmp_path)
        assert table.rows == serial_table.rows
        assert table.columns == serial_table.columns
        assert table.metadata["spec"] == serial_table.metadata["spec"]

    def test_stream_provenance_survives_table_round_trip(self, tmp_path):
        from repro.experiments.results_io import load_table_json, save_table_json

        table = run_spec(
            sweep_spec(), stream_dir=tmp_path / "s", stream_durable=False
        ).to_table()
        loaded = load_table_json(
            save_table_json(table, tmp_path / "table.json")
        )
        assert loaded.metadata["distributed"]["stream"]["records_appended"] == 4


class TestDiskFaultChaos:
    def test_enospc_degrades_to_a_resumable_error(self, tmp_path):
        spec = sweep_spec()
        serial = run_spec(spec)
        plan = bundled_stream_plans(4)["enospc"]
        with pytest.raises(SinkFullError) as excinfo:
            run_spec(
                spec, stream_dir=tmp_path, stream_durable=False, fault_plan=plan
            )
        assert excinfo.value.directory == str(tmp_path)
        assert "resume" in str(excinfo.value)
        # Everything before the full disk is durable; the resume finishes.
        resumed = run_spec(
            spec, stream_dir=tmp_path, stream_durable=False, resume=True
        )
        assert_bit_identical(serial, resumed)
        assert resumed.provenance["points_resumed"] == 2

    def test_torn_write_recovers_bit_identically(self, tmp_path):
        from repro.dist import SweepInterrupted

        spec = sweep_spec()
        serial = run_spec(spec)
        plan = bundled_stream_plans(4)["torn-write"]
        with pytest.raises(SweepInterrupted):
            run_spec(
                spec, stream_dir=tmp_path, stream_durable=False, fault_plan=plan
            )
        resumed = run_spec(
            spec, stream_dir=tmp_path, stream_durable=False, resume=True
        )
        assert_bit_identical(serial, resumed)
        stream = resumed.provenance["stream"]
        assert stream["torn_quarantined"] == ["segment-0000.jsonl.torn"]

    def test_transient_fsync_failure_retries_and_completes(self, tmp_path):
        spec = sweep_spec()
        serial = run_spec(spec)
        plan = bundled_stream_plans(4)["fsync-error"]
        run = run_spec(spec, stream_dir=tmp_path, fault_plan=plan)
        assert_bit_identical(serial, run)
        stream = run.provenance["stream"]
        assert stream["fsync_failures"] == 1
        assert stream["fsync_calls"] > stream["fsync_failures"]


class TestKill9Survival:
    def test_sigkilled_sweep_resumes_bit_identically(self, tmp_path):
        # A subprocess streams the sweep and is SIGKILL'd by the
        # kill-after-records rule the instant record 2 hits the sink; the
        # parent then resumes the directory and must match the serial run.
        spec = sweep_spec()
        serial = run_spec(spec)
        stream = tmp_path / "stream"
        spec_path = save_spec(spec, tmp_path / "spec.json")
        plan_path = save_plan(
            bundled_stream_plans(4, include_kill=True)["kill-9"],
            tmp_path / "plan.json",
        )
        script = tmp_path / "victim.py"
        script.write_text(
            textwrap.dedent(
                f"""
                import json
                from repro.faultinject import load_plan
                from repro.spec import ScenarioSpec, run_spec

                spec = ScenarioSpec.from_dict(
                    json.load(open({str(spec_path)!r}))
                )
                run_spec(
                    spec,
                    stream_dir={str(stream)!r},
                    stream_durable=False,
                    fault_plan=load_plan({str(plan_path)!r}),
                )
                raise SystemExit("survived a kill -9 plan")
                """
            )
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        victim = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert victim.returncode == -signal.SIGKILL, victim.stderr
        # Exactly the records appended before the kill are on disk.
        recovered = [r["index"] for r in stream_payloads(stream, spec)]
        assert recovered == [0, 1]
        resumed = run_spec(
            spec, stream_dir=stream, stream_durable=False, resume=True
        )
        assert_bit_identical(serial, resumed)
        assert resumed.provenance["points_resumed"] == 2


class TestDurableCheckpoints:
    def test_save_fsyncs_file_and_directory_by_default(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        store = CheckpointStore(tmp_path, sweep_spec())
        store.save({"index": 0, "results": []})
        assert len(synced) == 2  # temp file + directory entry
        assert json.loads((tmp_path / "point-000000.json").read_text())[
            "index"
        ] == 0

    def test_durable_false_skips_fsync(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        store = CheckpointStore(tmp_path, sweep_spec(), durable=False)
        store.save({"index": 0, "results": []})
        assert synced == []
        assert (tmp_path / "point-000000.json").exists()

    def test_atomic_write_removes_temp_on_failure(self, tmp_path, monkeypatch):
        def explode(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            atomic_write_text(tmp_path / "out.json", "{}", durable=False)
        assert list(tmp_path.iterdir()) == []

    def test_save_leaves_no_temp_behind_a_failed_rename(
        self, tmp_path, monkeypatch
    ):
        store = CheckpointStore(tmp_path, sweep_spec(), durable=False)

        def explode(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            store.save({"index": 0, "results": []})
        assert not list(tmp_path.glob("*.tmp"))


class TestPointRunPayloads:
    def test_point_run_round_trips_through_the_stream(self, tmp_path):
        spec = sweep_spec()
        serial = run_spec(spec)
        run_spec(spec, stream_dir=tmp_path, stream_durable=False)
        rebuilt = [
            point_run_from_payload(payload)
            for payload in stream_payloads(tmp_path, spec)
        ]
        for ours, theirs in zip(serial.points, rebuilt):
            assert ours.index == theirs.index
            assert ours.label == theirs.label
            assert ours.results == theirs.results


class TestStreamCLI:
    def _write_spec(self, tmp_path) -> Path:
        return save_spec(sweep_spec(), tmp_path / "spec.json")

    def test_stream_dir_flag_matches_serial_save(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        serial_out = tmp_path / "serial.json"
        streamed_out = tmp_path / "streamed.json"
        assert main(["run-spec", str(path), "--save", str(serial_out)]) == 0
        assert (
            main(
                [
                    "run-spec",
                    str(path),
                    "--stream-dir",
                    str(tmp_path / "stream"),
                    "--save",
                    str(streamed_out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        from repro.experiments.results_io import load_table_json

        serial = load_table_json(serial_out)
        streamed = load_table_json(streamed_out)
        assert streamed.rows == serial.rows
        assert streamed.metadata["distributed"]["stream"]["records_appended"] == 4

    def test_stream_resume_round_trip(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        stream = tmp_path / "stream"
        assert main(["run-spec", str(path), "--stream-dir", str(stream)]) == 0
        first = capsys.readouterr().out
        assert (
            main(
                ["run-spec", str(path), "--stream-dir", str(stream), "--resume"]
            )
            == 0
        )
        second = capsys.readouterr().out
        assert first == second

    def test_resume_requires_a_durable_directory(self, tmp_path):
        path = self._write_spec(tmp_path)
        with pytest.raises(ConfigurationError, match="stream-dir"):
            main(["run-spec", str(path), "--resume"])

    def test_enospc_exits_tempfail_with_resume_hint(self, tmp_path, capsys):
        path = self._write_spec(tmp_path)
        plan = tmp_path / "plan.json"
        save_plan(bundled_stream_plans(4)["enospc"], plan)
        code = main(
            [
                "run-spec",
                str(path),
                "--stream-dir",
                str(tmp_path / "stream"),
                "--fault-plan",
                str(plan),
            ]
        )
        captured = capsys.readouterr()
        assert code == 75  # EX_TEMPFAIL
        assert "resume" in captured.err
