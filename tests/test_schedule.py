"""Unit tests for the phase schedules of Algorithms 1 and 2."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.protocols.schedule import (
    PhaseSchedule,
    algorithm1_schedule,
    algorithm2_schedule,
    log2_estimate,
    loglog_estimate,
)


class TestLogHelpers:
    def test_log2_estimate_guards_small_values(self):
        assert log2_estimate(0) == 1.0
        assert log2_estimate(1) == 1.0
        assert log2_estimate(1024) == pytest.approx(10.0)

    def test_loglog_estimate_is_at_least_one(self):
        assert loglog_estimate(2) == 1.0
        assert loglog_estimate(4) == 1.0
        assert loglog_estimate(2**16) == pytest.approx(4.0)


class TestPhaseSchedule:
    def test_phase_of_each_round(self):
        schedule = PhaseSchedule(phase1_end=3, phase2_end=5, phase3_end=6, phase4_end=9)
        assert [schedule.phase_of(t) for t in range(1, 10)] == [1, 1, 1, 2, 2, 3, 4, 4, 4]

    def test_labels(self):
        schedule = PhaseSchedule(phase1_end=1, phase2_end=2, phase3_end=3, phase4_end=4)
        assert schedule.label_of(1) == "phase1"
        assert schedule.label_of(4) == "phase4"

    def test_out_of_range_round_rejected(self):
        schedule = PhaseSchedule(phase1_end=1, phase2_end=2, phase3_end=3, phase4_end=4)
        with pytest.raises(ConfigurationError):
            schedule.phase_of(0)
        with pytest.raises(ConfigurationError):
            schedule.phase_of(5)

    def test_non_monotone_boundaries_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseSchedule(phase1_end=5, phase2_end=3, phase3_end=6, phase4_end=7)

    def test_negative_boundaries_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseSchedule(phase1_end=-1, phase2_end=2, phase3_end=3, phase4_end=4)

    def test_phase_lengths_sum_to_horizon(self):
        schedule = PhaseSchedule(phase1_end=3, phase2_end=7, phase3_end=8, phase4_end=12)
        lengths = schedule.phase_lengths()
        assert sum(lengths.values()) == schedule.horizon == 12
        assert lengths["phase3"] == 1

    def test_zero_length_phase_is_never_matched(self):
        schedule = PhaseSchedule(phase1_end=2, phase2_end=2, phase3_end=3, phase4_end=3)
        phases = {schedule.phase_of(t) for t in range(1, 4)}
        assert 2 not in phases
        assert 4 not in phases


class TestAlgorithm1Schedule:
    def test_boundaries_follow_formula(self):
        n, alpha = 1024, 1.0
        schedule = algorithm1_schedule(n, alpha)
        log_n, loglog_n = 10.0, math.log2(10.0)
        assert schedule.phase1_end == math.ceil(alpha * log_n)
        assert schedule.phase2_end == math.ceil(alpha * (log_n + loglog_n))
        assert schedule.phase3_end == schedule.phase2_end + 1
        assert schedule.phase4_end == 2 * math.ceil(alpha * log_n) + math.ceil(
            alpha * loglog_n
        )

    def test_alpha_scales_phases(self):
        small = algorithm1_schedule(4096, 1.0)
        large = algorithm1_schedule(4096, 2.0)
        assert large.phase1_end == 2 * small.phase1_end
        assert large.horizon > small.horizon

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            algorithm1_schedule(1024, 0.0)

    def test_phase3_is_single_round(self):
        schedule = algorithm1_schedule(2048, 1.0)
        assert schedule.phase3_end - schedule.phase2_end == 1

    def test_tiny_estimates_still_give_valid_schedules(self):
        schedule = algorithm1_schedule(2, 1.0)
        assert schedule.horizon >= schedule.phase3_end >= 1


class TestAlgorithm2Schedule:
    def test_shares_phases_1_and_2_with_algorithm1(self):
        a1 = algorithm1_schedule(4096, 1.5)
        a2 = algorithm2_schedule(4096, 1.5)
        assert a1.phase1_end == a2.phase1_end
        assert a1.phase2_end == a2.phase2_end

    def test_has_no_phase4(self):
        schedule = algorithm2_schedule(4096, 1.0)
        assert schedule.phase3_end == schedule.phase4_end
        assert schedule.phase_lengths()["phase4"] == 0

    def test_pull_phase_length_scales_with_loglog(self):
        schedule = algorithm2_schedule(2**16, 2.0)
        pull_rounds = schedule.phase3_end - schedule.phase2_end
        assert pull_rounds >= math.floor(2.0 * math.log2(16)) - 1

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            algorithm2_schedule(1024, -1.0)


BOUNDARY_CASES = [
    # (n_estimate, alpha) — chosen to land the ⌈·⌉ arguments both on and off
    # integer values, including the degenerate estimates the guards clamp.
    (2, 1.0),
    (4, 1.0),
    (16, 1.0),
    (256, 1.0),
    (1024, 1.0),
    (1024, 0.5),
    (4096, 1.0),
    (4096, 1.5),
    (65536, 1.0),
    (65536, 2.0),
    (10**6, 1.0),
]


class TestAlgorithm2PhaseBoundaries:
    """The phase-2→3 transition and the ⌈α·log n + 2α·log log n⌉ end point.

    These are exactly the boundaries Algorithm 2's push/pull gating keys off,
    so an off-by-one here silently turns a pull-tail round into a dead round.
    """

    @pytest.mark.parametrize("n_estimate,alpha", BOUNDARY_CASES)
    def test_phase2_to_phase3_transition(self, n_estimate, alpha):
        schedule = algorithm2_schedule(n_estimate, alpha)
        if schedule.phase2_end >= 1:
            assert schedule.phase_of(schedule.phase2_end) in (1, 2)
        assert schedule.phase_of(schedule.phase2_end + 1) == 3
        assert schedule.phase_of(schedule.phase3_end) == 3

    @pytest.mark.parametrize("n_estimate,alpha", BOUNDARY_CASES)
    def test_phase3_end_matches_paper_formula(self, n_estimate, alpha):
        schedule = algorithm2_schedule(n_estimate, alpha)
        log_n = log2_estimate(n_estimate)
        loglog_n = loglog_estimate(n_estimate)
        paper_end = math.ceil(alpha * log_n + 2 * alpha * loglog_n)
        # The paper's end point, except the pull tail is never empty: when
        # ⌈α·log n + 2α·log log n⌉ collapses onto phase 2 (tiny estimates),
        # the schedule still grants one pull round.
        assert schedule.phase3_end == max(schedule.phase2_end + 1, paper_end)
        assert schedule.phase3_end >= schedule.phase2_end + 1
        assert schedule.horizon == schedule.phase3_end

    @pytest.mark.parametrize("n_estimate,alpha", BOUNDARY_CASES)
    def test_pull_tail_is_never_longer_than_formula_plus_guard(self, n_estimate, alpha):
        schedule = algorithm2_schedule(n_estimate, alpha)
        loglog_n = loglog_estimate(n_estimate)
        pull_rounds = schedule.phase3_end - schedule.phase2_end
        # α·log log n rounds up to the two ceilings' slack, at least 1.
        assert 1 <= pull_rounds <= math.ceil(alpha * loglog_n) + 2

    @pytest.mark.parametrize("n_estimate,alpha", [(1024, 1.0), (65536, 2.0), (4096, 1.5)])
    def test_protocol_gating_flips_exactly_at_the_boundary(self, n_estimate, alpha):
        from repro.protocols.algorithm2 import Algorithm2

        protocol = Algorithm2(n_estimate=n_estimate, alpha=alpha)
        schedule = protocol.schedule
        boundary = schedule.phase2_end
        assert protocol.push_round(boundary)
        assert not protocol.pull_round(boundary)
        assert not protocol.push_round(boundary + 1)
        assert protocol.pull_round(boundary + 1)
        assert protocol.pull_round(schedule.phase3_end)
        with pytest.raises(ConfigurationError):
            protocol.pull_round(schedule.phase3_end + 1)
