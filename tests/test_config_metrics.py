"""Unit tests for repro.core.config and repro.core.metrics."""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.errors import ConfigurationError
from repro.core.metrics import (
    RoundRecord,
    RunResult,
    SummaryStatistic,
    aggregate_runs,
)


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.max_rounds is None
        assert config.message_loss_probability == 0.0
        assert config.stop_when_informed is True

    def test_invalid_max_rounds(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_rounds=0)

    def test_invalid_probabilities(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(message_loss_probability=1.5)
        with pytest.raises(ConfigurationError):
            SimulationConfig(channel_failure_probability=-0.2)
        with pytest.raises(ConfigurationError):
            SimulationConfig(churn_rate=2.0)

    def test_with_overrides(self):
        config = SimulationConfig().with_overrides(message_loss_probability=0.1)
        assert config.message_loss_probability == 0.1
        assert config.stop_when_informed is True

    def test_with_overrides_does_not_mutate_original(self):
        original = SimulationConfig()
        original.with_overrides(stop_when_informed=False)
        assert original.stop_when_informed is True

    def test_frozen(self):
        config = SimulationConfig()
        with pytest.raises(Exception):
            config.max_rounds = 10  # type: ignore[misc]


def _record(round_index=1, before=1, after=3, push=4, pull=0, channels=8, lost=0, phase=""):
    return RoundRecord(
        round_index=round_index,
        informed_before=before,
        informed_after=after,
        push_transmissions=push,
        pull_transmissions=pull,
        channels_opened=channels,
        lost_transmissions=lost,
        phase=phase,
    )


def _result(n=10, success=True, rounds=3, push=20, pull=5, channels=100, informed=10):
    return RunResult(
        n=n,
        protocol="test",
        source=0,
        success=success,
        rounds_executed=rounds,
        rounds_to_completion=rounds if success else None,
        total_push_transmissions=push,
        total_pull_transmissions=pull,
        total_channels_opened=channels,
        total_lost_transmissions=0,
        final_informed=informed,
        history=[_record()],
        phase_transmissions={"phase1": push + pull},
    )


class TestRoundRecord:
    def test_totals(self):
        record = _record(push=4, pull=3)
        assert record.transmissions == 7

    def test_newly_informed(self):
        record = _record(before=2, after=9)
        assert record.newly_informed == 7


class TestRunResult:
    def test_total_transmissions(self):
        assert _result(push=20, pull=5).total_transmissions == 25

    def test_per_node_metrics(self):
        result = _result(n=10, push=20, pull=5, channels=100)
        assert result.transmissions_per_node == 2.5
        assert result.channels_per_node == 10.0

    def test_informed_fraction(self):
        assert _result(n=10, informed=5).informed_fraction == 0.5

    def test_informed_curve_from_history(self):
        assert _result().informed_curve() == [3]

    def test_transmissions_by_phase_is_copy(self):
        result = _result()
        phases = result.transmissions_by_phase()
        phases["phase1"] = -1
        assert result.phase_transmissions["phase1"] != -1


class TestSummaryStatistic:
    def test_from_values(self):
        stat = SummaryStatistic.from_values([1.0, 2.0, 3.0])
        assert stat.mean == pytest.approx(2.0)
        assert stat.minimum == 1.0
        assert stat.maximum == 3.0
        assert stat.count == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SummaryStatistic.from_values([])


class TestAggregateRuns:
    def test_aggregate_mixed_success(self):
        results = [_result(success=True, rounds=3), _result(success=False, rounds=5)]
        aggregate = aggregate_runs(results)
        assert aggregate.runs == 2
        assert aggregate.success_rate == 0.5
        assert aggregate.rounds.mean == pytest.approx(4.0)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([])

    def test_aggregate_carries_protocol_and_n(self):
        aggregate = aggregate_runs([_result()])
        assert aggregate.protocol == "test"
        assert aggregate.n == 10
