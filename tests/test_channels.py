"""Unit tests for repro.core.channels."""

from __future__ import annotations

import pytest

from repro.core.channels import Channel, ChannelSet


class TestChannel:
    def test_other_end(self):
        channel = Channel(caller=1, callee=2)
        assert channel.other_end(1) == 2
        assert channel.other_end(2) == 1

    def test_other_end_rejects_non_endpoint(self):
        channel = Channel(caller=1, callee=2)
        with pytest.raises(ValueError):
            channel.other_end(3)

    def test_channels_are_value_objects(self):
        assert Channel(1, 2) == Channel(1, 2)
        assert Channel(1, 2) != Channel(2, 1)


class TestChannelSet:
    def test_empty_set(self):
        channels = ChannelSet()
        assert len(channels) == 0
        assert channels.outgoing(1) == []
        assert channels.incoming(1) == []

    def test_open_indexes_both_directions(self):
        channels = ChannelSet()
        channels.open(1, 2)
        channels.open(1, 3)
        channels.open(4, 1)
        assert len(channels) == 3
        assert [c.callee for c in channels.outgoing(1)] == [2, 3]
        assert [c.caller for c in channels.incoming(1)] == [4]

    def test_callers_and_callees_of(self):
        channels = ChannelSet()
        channels.open(1, 2)
        channels.open(3, 2)
        assert sorted(channels.callers_of(2)) == [1, 3]
        assert channels.callees_of(1) == [2]
        assert channels.callees_of(2) == []

    def test_edges_lists_all_channels(self):
        channels = ChannelSet()
        channels.open(1, 2)
        channels.open(2, 1)
        assert channels.edges() == [(1, 2), (2, 1)]

    def test_iteration_order_is_open_order(self):
        channels = ChannelSet()
        channels.open(5, 6)
        channels.open(7, 8)
        assert [(c.caller, c.callee) for c in channels] == [(5, 6), (7, 8)]

    def test_parallel_channels_allowed(self):
        channels = ChannelSet()
        channels.open(1, 2)
        channels.open(1, 2)
        assert len(channels) == 2
        assert len(channels.outgoing(1)) == 2
