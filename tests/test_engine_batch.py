"""Batched vectorized engine: bit-parity, dispatch, and lifecycle tests.

The batched engine's contract is stronger than the scalar↔vectorized one:
every replication of a batch must be *bit-identical* to the corresponding
single-seed vectorized run (same seeds, same graph, same configuration), with
only ``metadata["batch_size"]`` distinguishing the results.  These tests pin
that contract over ≥20 seeds for every batchable protocol, exercise the
failure-injection paths, and cover the dispatch plumbing
(``run_broadcast_batch`` → ``repeat_broadcast`` → ``ExperimentRunner``) plus
the protocol ``reset()`` lifecycle hook the batch relies on.
"""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.engine import RoundEngine, run_broadcast, run_broadcast_batch
from repro.core.engine_vectorized import BatchedVectorizedRoundEngine
from repro.core.errors import SimulationError
from repro.core.rng import RandomSource
from repro.experiments.runner import ExperimentRunner, repeat_broadcast
from repro.graphs.configuration_model import pairing_multigraph, random_regular_graph
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.algorithm2 import Algorithm2
from repro.protocols.pull import PullProtocol
from repro.protocols.push import PushProtocol
from repro.protocols.push_pull import PushPullProtocol
from repro.protocols.quasirandom import QuasirandomPushProtocol
from repro.protocols.sequential import SequentialAlgorithm1

PARITY_SEEDS = list(range(100, 122))  # 22 seeds, ≥ the acceptance's 20

PROTOCOL_FACTORIES = {
    "push": lambda n: PushProtocol(n_estimate=n),
    "pull": lambda n: PullProtocol(n_estimate=n),
    "push-pull": lambda n: PushPullProtocol(n_estimate=n),
    "algorithm1": lambda n: Algorithm1(n_estimate=n),
    "algorithm2": lambda n: Algorithm2(n_estimate=n),
    "quasirandom": lambda n: QuasirandomPushProtocol(n_estimate=n),
}


@pytest.fixture(scope="module")
def regular_graph():
    graph = random_regular_graph(512, 8, RandomSource(seed=42), strategy="repair")
    graph.csr()
    return graph


@pytest.fixture(scope="module")
def multigraph():
    # Self-loops and parallel edges exercise the channel-filter path.
    return pairing_multigraph(256, 6, RandomSource(seed=9))


def run_signature(result):
    """Everything a RunResult reports except metadata, as a comparable value."""
    return (
        result.n,
        result.protocol,
        result.source,
        result.success,
        result.rounds_executed,
        result.rounds_to_completion,
        result.total_push_transmissions,
        result.total_pull_transmissions,
        result.total_channels_opened,
        result.total_lost_transmissions,
        result.final_informed,
        tuple(result.informed_curve()),
        tuple(
            (record.round_index, record.informed_before, record.informed_after,
             record.push_transmissions, record.pull_transmissions,
             record.channels_opened, record.lost_transmissions, record.phase)
            for record in result.history
        ),
        tuple(sorted(result.phase_transmissions.items())),
    )


def assert_bit_identical(graph, factory, seeds, **config_kwargs):
    config = SimulationConfig(engine="vectorized", **config_kwargs)
    n = graph.node_count
    singles = [
        run_broadcast(graph, factory(n), seed=seed, config=config) for seed in seeds
    ]
    batched = run_broadcast_batch(graph, factory(n), seeds, config=config)
    assert len(batched) == len(seeds)
    for single, row in zip(singles, batched):
        assert run_signature(single) == run_signature(row)
        assert row.metadata["engine"] == "vectorized"
        assert row.metadata["batch_size"] == len(seeds)


# ---------------------------------------------------------------------------
# Bit-parity with single-seed vectorized runs
# ---------------------------------------------------------------------------


class TestBatchBitParity:
    @pytest.mark.parametrize("protocol_name", sorted(PROTOCOL_FACTORIES))
    def test_each_row_matches_single_run(self, protocol_name, regular_graph):
        assert_bit_identical(
            regular_graph, PROTOCOL_FACTORIES[protocol_name], PARITY_SEEDS
        )

    @pytest.mark.parametrize("protocol_name", ["push", "push-pull", "algorithm1"])
    def test_parity_with_transmission_loss(self, protocol_name, regular_graph):
        assert_bit_identical(
            regular_graph,
            PROTOCOL_FACTORIES[protocol_name],
            PARITY_SEEDS,
            message_loss_probability=0.2,
        )

    def test_parity_with_channel_failure(self, regular_graph):
        assert_bit_identical(
            regular_graph,
            PROTOCOL_FACTORIES["push-pull"],
            PARITY_SEEDS,
            channel_failure_probability=0.1,
            message_loss_probability=0.1,
        )

    def test_parity_on_multigraph_with_self_loops(self, multigraph):
        assert_bit_identical(multigraph, PROTOCOL_FACTORIES["push-pull"], PARITY_SEEDS)

    def test_parity_on_full_schedule(self, regular_graph):
        assert_bit_identical(
            regular_graph,
            PROTOCOL_FACTORIES["algorithm1"],
            PARITY_SEEDS[:8],
            stop_when_informed=False,
        )

    def test_parity_with_non_zero_source(self, regular_graph):
        config = SimulationConfig(engine="vectorized")
        singles = [
            run_broadcast(
                regular_graph, PushProtocol(n_estimate=512), source=37,
                seed=seed, config=config,
            )
            for seed in PARITY_SEEDS[:6]
        ]
        batched = run_broadcast_batch(
            regular_graph, PushProtocol(n_estimate=512), PARITY_SEEDS[:6],
            source=37, config=config,
        )
        for single, row in zip(singles, batched):
            assert run_signature(single) == run_signature(row)

    def test_single_seed_batch_matches_single_run(self, regular_graph):
        assert_bit_identical(regular_graph, PROTOCOL_FACTORIES["push"], [77])


# ---------------------------------------------------------------------------
# Dispatch plumbing
# ---------------------------------------------------------------------------


class TestBatchDispatch:
    def test_empty_seed_list_rejected(self, regular_graph):
        with pytest.raises(SimulationError):
            BatchedVectorizedRoundEngine(
                graph=regular_graph, protocol=PushProtocol(n_estimate=512), seeds=[]
            )

    def test_unsupported_protocol_falls_back_to_loop(self, regular_graph):
        results = run_broadcast_batch(
            regular_graph, SequentialAlgorithm1(n_estimate=512), seeds=[1, 2]
        )
        assert len(results) == 2
        assert all(r.metadata["engine"] == "scalar" for r in results)
        assert all("batch_size" not in r.metadata for r in results)

    def test_forced_vectorized_with_unsupported_protocol_raises(self, regular_graph):
        with pytest.raises(SimulationError, match="bulk hooks"):
            run_broadcast_batch(
                regular_graph,
                SequentialAlgorithm1(n_estimate=512),
                seeds=[1, 2],
                config=SimulationConfig(engine="vectorized"),
            )

    def test_scalar_engine_request_bypasses_batch(self, regular_graph):
        results = run_broadcast_batch(
            regular_graph,
            PushProtocol(n_estimate=512),
            seeds=[1, 2],
            config=SimulationConfig(engine="scalar"),
        )
        assert all(r.metadata["engine"] == "scalar" for r in results)

    def test_repeat_broadcast_routes_through_batch(self, regular_graph):
        results = repeat_broadcast(
            graph=regular_graph,
            protocol_factory=lambda n: PushProtocol(n_estimate=n),
            n_estimate=512,
            seeds=[5, 6, 7],
        )
        assert all(r.metadata.get("batch_size") == 3 for r in results)

    def test_repeat_broadcast_batch_results_match_loop(self, regular_graph):
        kwargs = dict(
            graph=regular_graph,
            protocol_factory=lambda n: PushProtocol(n_estimate=n),
            n_estimate=512,
            seeds=[5, 6, 7],
            config=SimulationConfig(engine="vectorized"),
        )
        batched = repeat_broadcast(batch=True, **kwargs)
        looped = repeat_broadcast(batch=False, **kwargs)
        for one, other in zip(looped, batched):
            assert run_signature(one) == run_signature(other)

    def test_repeat_broadcast_batch_disabled(self, regular_graph):
        results = repeat_broadcast(
            graph=regular_graph,
            protocol_factory=lambda n: PushProtocol(n_estimate=n),
            n_estimate=512,
            seeds=[5, 6],
            batch=False,
        )
        assert all("batch_size" not in r.metadata for r in results)

    def test_experiment_runner_uses_batch(self):
        runner = ExperimentRunner(master_seed=1, repetitions=3)
        results = runner.broadcast(64, 4, lambda n: PushProtocol(n_estimate=n), label="b")
        assert all(r.metadata.get("batch_size") == 3 for r in results)

    def test_experiment_runner_batch_off_matches_batch_on(self):
        on = ExperimentRunner(master_seed=1, repetitions=3)
        off = ExperimentRunner(master_seed=1, repetitions=3, batch=False)
        batched = on.broadcast(64, 4, lambda n: PushProtocol(n_estimate=n), label="b")
        looped = off.broadcast(64, 4, lambda n: PushProtocol(n_estimate=n), label="b")
        for one, other in zip(looped, batched):
            assert run_signature(one) == run_signature(other)


# ---------------------------------------------------------------------------
# Protocol reset lifecycle
# ---------------------------------------------------------------------------


class TestProtocolReset:
    def test_quasirandom_scalar_reuse_is_clean(self, regular_graph):
        # Regression: the pointer dict used to leak across runs, so a reused
        # instance silently continued the previous run's cyclic positions.
        protocol = QuasirandomPushProtocol(n_estimate=512)
        config = SimulationConfig(engine="scalar")
        first = run_broadcast(regular_graph, protocol, seed=3, config=config)
        second = run_broadcast(regular_graph, protocol, seed=3, config=config)
        assert run_signature(first) == run_signature(second)

    def test_quasirandom_vectorized_reuse_is_clean(self, regular_graph):
        protocol = QuasirandomPushProtocol(n_estimate=512)
        config = SimulationConfig(engine="vectorized")
        first = run_broadcast(regular_graph, protocol, seed=3, config=config)
        second = run_broadcast(regular_graph, protocol, seed=3, config=config)
        assert run_signature(first) == run_signature(second)

    def test_engines_call_reset(self, regular_graph):
        calls = []

        class Probe(PushProtocol):
            def reset(self):
                calls.append("reset")

        protocol = Probe(n_estimate=512)
        RoundEngine(regular_graph, protocol).run()
        assert calls == ["reset"]
        run_broadcast(
            regular_graph, protocol, seed=1, config=SimulationConfig(engine="vectorized")
        )
        assert calls == ["reset", "reset"]
        run_broadcast_batch(regular_graph, protocol, seeds=[1, 2])
        assert calls == ["reset", "reset", "reset"]

    def test_reset_clears_quasirandom_state(self):
        protocol = QuasirandomPushProtocol(n_estimate=64)
        protocol._pointers[3] = 7
        import numpy as np

        protocol._pointer_table = np.zeros(4, dtype=np.int64)
        protocol.reset()
        assert protocol._pointers == {}
        assert protocol._pointer_table is None
