"""Unit tests for repro.core.node (NodeState and StateTable)."""

from __future__ import annotations

import pytest

from repro.core.node import NodeState, StateTable


class TestNodeState:
    def test_initially_uninformed(self):
        state = NodeState(node_id=3)
        assert not state.informed
        assert state.informed_round is None
        assert not state.active

    def test_make_source_informs_at_round_zero(self):
        state = NodeState(node_id=0)
        state.make_source()
        assert state.informed
        assert state.informed_round == 0
        assert state.newly_informed_in(0)

    def test_deliver_then_commit(self):
        state = NodeState(node_id=1)
        assert state.deliver(4) is True
        # Not informed until the round is committed.
        assert not state.informed
        assert state.commit_round() is True
        assert state.informed
        assert state.informed_round == 4
        assert state.newly_informed_in(4)

    def test_duplicate_delivery_in_same_round(self):
        state = NodeState(node_id=1)
        assert state.deliver(4) is True
        assert state.deliver(4) is False
        state.commit_round()
        assert state.informed_round == 4

    def test_deliver_to_informed_node_is_noop(self):
        state = NodeState(node_id=1)
        state.make_source()
        assert state.deliver(3) is False
        assert state.commit_round() is False
        assert state.informed_round == 0

    def test_commit_without_delivery_is_noop(self):
        state = NodeState(node_id=1)
        assert state.commit_round() is False
        assert not state.informed

    def test_newly_informed_in_other_round_false(self):
        state = NodeState(node_id=1)
        state.deliver(2)
        state.commit_round()
        assert not state.newly_informed_in(3)

    def test_remember_partner_window(self):
        state = NodeState(node_id=1)
        for partner in range(10):
            state.remember_partner(partner, window=3)
        assert state.memory == [7, 8, 9]


class TestStateTable:
    def test_source_is_informed(self):
        table = StateTable(n=5, source=2)
        assert table[2].informed
        assert table.informed_count == 1
        assert table.uninformed_count == 4

    def test_invalid_source_rejected(self):
        with pytest.raises(ValueError):
            StateTable(n=5, source=5)

    def test_len_and_iteration(self):
        table = StateTable(n=4, source=0)
        assert len(table) == 4
        assert sorted(s.node_id for s in table) == [0, 1, 2, 3]

    def test_commit_round_promotes_and_counts(self):
        table = StateTable(n=4, source=0)
        table[1].deliver(1)
        table[2].deliver(1)
        newly = table.commit_round()
        assert newly == {1, 2}
        assert table.informed_count == 3

    def test_all_informed(self):
        table = StateTable(n=3, source=0)
        assert not table.all_informed()
        table[1].deliver(1)
        table[2].deliver(1)
        table.commit_round()
        assert table.all_informed()

    def test_informed_and_uninformed_ids(self):
        table = StateTable(n=4, source=1)
        assert table.informed_ids() == {1}
        assert table.uninformed_ids() == {0, 2, 3}

    def test_add_node(self):
        table = StateTable(n=3, source=0)
        state = table.add_node(99)
        assert not state.informed
        assert table.contains(99)
        assert len(table) == 4
        assert table.uninformed_count == 3

    def test_add_existing_node_rejected(self):
        table = StateTable(n=3, source=0)
        with pytest.raises(ValueError):
            table.add_node(1)

    def test_remove_uninformed_node(self):
        table = StateTable(n=3, source=0)
        table.remove_node(2)
        assert not table.contains(2)
        assert table.informed_count == 1
        assert len(table) == 2

    def test_remove_informed_node_updates_count(self):
        table = StateTable(n=3, source=0)
        table.remove_node(0)
        assert table.informed_count == 0

    def test_node_ids_sorted(self):
        table = StateTable(n=3, source=0)
        table.add_node(10)
        assert table.node_ids() == [0, 1, 2, 10]

    def test_remove_node_with_staged_delivery_drops_it_accountably(self):
        # Regression: a node that departs (churn) while holding a delivery
        # staged earlier in the same round must neither surface as newly
        # informed at commit nor vanish without a trace — the dropped staged
        # delivery is recorded so transmission accounting identities can
        # reconcile "transmissions sent" against "nodes informed".
        table = StateTable(n=4, source=0)
        table[2].deliver(current_round=3)
        removed = table.remove_node(2)
        assert table.dropped_pending_deliveries == 1
        # The staged delivery is cleared on the evicted state: committing it
        # later (or re-adding the id) must not resurrect the delivery.
        assert removed.commit_round() is False
        assert not removed.informed
        newly = table.commit_round()
        assert newly == set()
        assert table.informed_count == 1

    def test_removed_then_readded_node_starts_clean(self):
        table = StateTable(n=4, source=0)
        table[1].deliver(current_round=2)
        table.remove_node(1)
        fresh = table.add_node(1)
        assert not fresh.informed
        assert table.commit_round() == set()
        assert table.informed_count == 1
        assert table.dropped_pending_deliveries == 1

    def test_removing_informed_node_does_not_count_as_dropped_delivery(self):
        table = StateTable(n=3, source=0)
        table.remove_node(0)
        assert table.dropped_pending_deliveries == 0
        assert table.informed_count == 0

    def test_source_attribute(self):
        table = StateTable(n=3, source=2)
        assert table.source == 2
