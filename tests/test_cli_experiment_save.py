"""Additional CLI and overlay-repair coverage."""

from __future__ import annotations

from repro.cli import main
from repro.core.rng import RandomSource
from repro.experiments.results_io import load_table_json
from repro.experiments.workloads import full_sizes
from repro.p2p.overlay import Overlay


class TestExperimentSave:
    def test_experiment_save_csv_and_json(self, tmp_path, capsys):
        json_target = tmp_path / "e5.json"
        exit_code = main(
            ["experiment", "E5", "--seed", "7", "--save", str(json_target)]
        )
        assert exit_code == 0
        loaded = load_table_json(json_target)
        assert loaded.rows
        assert "saved results" in capsys.readouterr().out


class TestWorkloadTiers:
    def test_full_tier_extends_quick_tier(self):
        tier = full_sizes()
        assert tier.repetitions >= 3
        assert tier.sizes == sorted(tier.sizes)
        assert tier.sizes[-1] >= 8192


class TestOverlayRepair:
    def test_repair_after_heavy_departures(self):
        overlay = Overlay(n=128, degree=8, rng=RandomSource(seed=9))
        for _ in range(20):
            overlay.leave()
        deficit = overlay.degree_deficit()
        added = overlay.repair()
        assert overlay.degree_deficit() <= deficit
        if deficit > 0:
            assert added >= 0
        # The overlay stays simple after repair.
        assert overlay.graph.is_simple()

    def test_random_swaps_after_churn_keep_graph_simple(self):
        overlay = Overlay(n=96, degree=6, rng=RandomSource(seed=10))
        for _ in range(5):
            overlay.leave()
            overlay.join()
        overlay.random_swaps(100)
        assert overlay.graph.is_simple()
        assert overlay.size == 96
