"""Property-based tests (hypothesis) for core data structures and invariants.

These tests check the invariants the paper's analysis relies on — degree
preservation of the pairing model, conservation of informed counts, phase
schedules covering every round exactly once, and monotonicity of the broadcast
process — over randomly generated inputs rather than hand-picked examples.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.scaling import fit_scaling_law
from repro.analysis.stats import mean, percentile, std
from repro.core.config import SimulationConfig
from repro.core.engine import run_broadcast
from repro.core.node import StateTable
from repro.core.rng import RandomSource
from repro.graphs.configuration_model import pairing_multigraph, random_regular_graph
from repro.protocols.push import PushProtocol
from repro.protocols.push_pull import PushPullProtocol
from repro.protocols.schedule import algorithm1_schedule, algorithm2_schedule

# Generating graphs and running broadcasts inside hypothesis examples is
# slower than its default deadline likes; the sizes are tiny, so just relax it.
RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# RNG
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    k=st.integers(min_value=1, max_value=10),
    size=st.integers(min_value=1, max_value=30),
)
@RELAXED
def test_sample_distinct_is_a_subset_without_replacement(seed, k, size):
    rng = RandomSource(seed=seed)
    items = list(range(size))
    sample = rng.sample_distinct(items, k)
    assert len(sample) == min(k, size)
    assert len(set(sample)) == len(sample)
    assert set(sample) <= set(items)


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    labels=st.lists(st.text(max_size=8), max_size=3),
)
@RELAXED
def test_spawned_streams_are_reproducible(seed, labels):
    a = RandomSource(seed=seed).spawn(*labels)
    b = RandomSource(seed=seed).spawn(*labels)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


# ---------------------------------------------------------------------------
# Graphs
# ---------------------------------------------------------------------------


@given(
    n=st.integers(min_value=8, max_value=60),
    d=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**32),
)
@RELAXED
def test_pairing_model_preserves_degree_sequence(n, d, seed):
    if (n * d) % 2 == 1:
        n += 1
    graph = pairing_multigraph(n, d, RandomSource(seed=seed))
    degrees = graph.degrees()
    assert len(degrees) == n
    assert all(degree == d for degree in degrees.values())
    assert graph.edge_count == n * d // 2


@given(
    n=st.integers(min_value=8, max_value=60),
    d=st.integers(min_value=3, max_value=6),
    seed=st.integers(min_value=0, max_value=2**32),
)
@RELAXED
def test_simple_generation_strategies_agree_on_invariants(n, d, seed):
    if (n * d) % 2 == 1:
        n += 1
    graph = random_regular_graph(n, d, RandomSource(seed=seed), strategy="repair")
    assert graph.is_simple()
    assert graph.is_regular()
    assert graph.degree(0) == d


# ---------------------------------------------------------------------------
# Phase schedules
# ---------------------------------------------------------------------------


@given(
    n=st.integers(min_value=2, max_value=2**20),
    alpha=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
)
@RELAXED
def test_algorithm1_schedule_partitions_every_round(n, alpha):
    schedule = algorithm1_schedule(n, alpha)
    phases = [schedule.phase_of(t) for t in range(1, schedule.horizon + 1)]
    assert set(phases) <= {1, 2, 3, 4}
    # Phases appear in non-decreasing order and phase 3 lasts at most one round.
    assert phases == sorted(phases)
    assert phases.count(3) <= 1
    assert schedule.horizon >= math.ceil(alpha * math.log2(max(2, n)))


@given(
    n=st.integers(min_value=2, max_value=2**20),
    alpha=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
)
@RELAXED
def test_algorithm2_schedule_pull_tail_is_loglog_long(n, alpha):
    schedule = algorithm2_schedule(n, alpha)
    pull_rounds = schedule.phase3_end - schedule.phase2_end
    loglog = max(1.0, math.log2(max(2.0, math.log2(max(2.0, n)))))
    assert 1 <= pull_rounds <= math.ceil(2 * alpha * loglog) + 2


# ---------------------------------------------------------------------------
# Node state / engine invariants
# ---------------------------------------------------------------------------


@given(
    n=st.integers(min_value=2, max_value=40),
    source=st.integers(min_value=0, max_value=39),
    deliveries=st.lists(st.integers(min_value=0, max_value=39), max_size=30),
)
@RELAXED
def test_state_table_informed_count_is_consistent(n, source, deliveries):
    source = source % n
    table = StateTable(n=n, source=source)
    for node in deliveries:
        if table.contains(node % n):
            table[node % n].deliver(1)
    table.commit_round()
    assert table.informed_count == len(table.informed_ids())
    assert table.informed_count + table.uninformed_count == n
    assert source in table.informed_ids()


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    d=st.integers(min_value=3, max_value=6),
)
@RELAXED
def test_broadcast_is_monotone_and_conservative(seed, d):
    n = 64
    graph = random_regular_graph(n, d, RandomSource(seed=seed), strategy="repair")
    result = run_broadcast(graph, PushPullProtocol(n_estimate=n), seed=seed)
    curve = result.informed_curve()
    # Monotone growth, never exceeding n, starting from at least the source.
    assert all(1 <= value <= n for value in curve)
    assert all(a <= b for a, b in zip(curve, curve[1:]))
    # Every newly informed node was caused by at least one successful
    # transmission: total informed - 1 <= delivered transmissions.
    delivered = result.total_transmissions - result.total_lost_transmissions
    assert result.final_informed - 1 <= delivered


@given(seed=st.integers(min_value=0, max_value=2**31))
@RELAXED
def test_transmissions_never_exceed_channels_times_two(seed):
    n, d = 64, 4
    graph = random_regular_graph(n, d, RandomSource(seed=seed), strategy="repair")
    result = run_broadcast(
        graph,
        PushProtocol(n_estimate=n),
        seed=seed,
        config=SimulationConfig(stop_when_informed=False),
    )
    # Push-only: at most one transmission per opened channel.
    assert result.total_transmissions <= result.total_channels_opened


# ---------------------------------------------------------------------------
# Analysis helpers
# ---------------------------------------------------------------------------


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
    )
)
@RELAXED
def test_stats_relationships(values):
    centre = mean(values)
    spread = std(values)
    assert min(values) - 1e-9 <= centre <= max(values) + 1e-9
    assert spread >= 0
    assert min(values) <= percentile(values, 50) <= max(values)


@given(
    slope=st.floats(min_value=-5, max_value=5, allow_nan=False),
    intercept=st.floats(min_value=-10, max_value=10, allow_nan=False),
)
@RELAXED
def test_scaling_fit_recovers_exact_linear_models(slope, intercept):
    sizes = [2**k for k in range(6, 14)]
    values = [intercept + slope * math.log2(n) for n in sizes]
    fit = fit_scaling_law(sizes, values, "log")
    assert abs(fit.slope - slope) < 1e-6
    assert abs(fit.intercept - intercept) < 1e-6
