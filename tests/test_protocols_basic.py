"""Unit tests for the classical protocols (push, pull, push&pull, quasirandom)."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.core.node import NodeState
from repro.core.rng import RandomSource
from repro.protocols.pull import PullProtocol
from repro.protocols.push import PushProtocol
from repro.protocols.push_pull import PushPullProtocol
from repro.protocols.quasirandom import QuasirandomPushProtocol


def informed_state(node_id: int = 0, informed_round: int = 0) -> NodeState:
    state = NodeState(node_id=node_id)
    state.informed = True
    state.informed_round = informed_round
    return state


class TestPushProtocol:
    def test_horizon_scales_with_log_n(self):
        assert PushProtocol(1024).horizon() == math.ceil(4.0 * 10)
        assert PushProtocol(1024, horizon_factor=2.0).horizon() == 20

    def test_horizon_override(self):
        assert PushProtocol(1024, horizon_override=7).horizon() == 7

    def test_push_only_flags(self):
        protocol = PushProtocol(256)
        assert protocol.push_round(1) and not protocol.pull_round(1)

    def test_only_informed_nodes_push(self):
        protocol = PushProtocol(256)
        assert protocol.wants_push(informed_state(), 3)
        assert not protocol.wants_push(NodeState(node_id=1), 3)
        assert not protocol.wants_pull(informed_state(), 3)

    def test_fanout_naming(self):
        assert PushProtocol(256).name == "push"
        assert PushProtocol(256, fanout=4).name == "push-4"

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PushProtocol(1)
        with pytest.raises(ConfigurationError):
            PushProtocol(256, fanout=0)
        with pytest.raises(ConfigurationError):
            PushProtocol(256, horizon_factor=0)

    def test_describe_includes_parameters(self):
        description = PushProtocol(256, fanout=2).describe()
        assert description["fanout"] == 2
        assert description["n_estimate"] == 256
        assert description["horizon"] > 0


class TestPullProtocol:
    def test_pull_only_flags(self):
        protocol = PullProtocol(256)
        assert protocol.pull_round(1) and not protocol.push_round(1)

    def test_only_informed_nodes_pull(self):
        protocol = PullProtocol(256)
        assert protocol.wants_pull(informed_state(), 2)
        assert not protocol.wants_pull(NodeState(node_id=1), 2)
        assert not protocol.wants_push(informed_state(), 2)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PullProtocol(256, fanout=-1)


class TestPushPullProtocol:
    def test_both_directions_enabled(self):
        protocol = PushPullProtocol(256)
        assert protocol.push_round(1) and protocol.pull_round(1)
        state = informed_state()
        assert protocol.wants_push(state, 1) and protocol.wants_pull(state, 1)

    def test_horizon_includes_loglog_tail(self):
        small = PushPullProtocol(256, extra_loglog_rounds=0.0)
        large = PushPullProtocol(256, extra_loglog_rounds=8.0)
        assert large.horizon() > small.horizon()

    def test_fanout_naming(self):
        assert PushPullProtocol(256, fanout=4).name == "push-pull-4"

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PushPullProtocol(256, extra_loglog_rounds=-1.0)


class TestQuasirandomPush:
    def test_informed_nodes_walk_their_list_cyclically(self):
        protocol = QuasirandomPushProtocol(64)
        state = informed_state(node_id=5)
        neighbours = [10, 11, 12]
        rng = RandomSource(seed=0)
        picks = [
            protocol.select_call_targets(state, neighbours, t, rng)[0]
            for t in range(1, 7)
        ]
        # After the random start, successive picks follow list order cyclically.
        start = neighbours.index(picks[0])
        expected = [neighbours[(start + i) % 3] for i in range(6)]
        assert picks == expected

    def test_uninformed_nodes_do_not_call(self):
        protocol = QuasirandomPushProtocol(64)
        state = NodeState(node_id=5)
        assert protocol.fanout(state, 1) == 0
        assert protocol.select_call_targets(state, [1, 2], 1, RandomSource(seed=0)) == []

    def test_empty_neighbourhood(self):
        protocol = QuasirandomPushProtocol(64)
        assert protocol.select_call_targets(informed_state(), [], 1, RandomSource(seed=0)) == []

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            QuasirandomPushProtocol(1)
