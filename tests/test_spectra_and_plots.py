"""Tests for the sparse spectral estimates and the ASCII plotting helpers."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource
from repro.analysis.ascii_plot import (
    ascii_informed_curve,
    ascii_multi_series,
    ascii_series,
)
from repro.graphs.base import Graph
from repro.graphs.configuration_model import random_regular_graph
from repro.graphs.families import complete_graph, ring_graph
from repro.graphs.properties import second_largest_adjacency_eigenvalue
from repro.graphs.spectra import (
    estimate_second_eigenvalue,
    spectral_expansion_profile,
)


class TestSpectralEstimate:
    def test_matches_dense_computation_on_random_regular_graph(self):
        graph = random_regular_graph(300, 8, RandomSource(seed=4))
        estimate = estimate_second_eigenvalue(graph, seed=1)
        exact = second_largest_adjacency_eigenvalue(graph)
        assert estimate.second_eigenvalue == pytest.approx(exact, rel=0.05)
        assert estimate.second_eigenvalue <= 1.2 * estimate.friedman_bound

    def test_complete_graph_second_eigenvalue_is_small(self):
        # K_n has lambda_2 = -1, so the shifted estimate is ~0.
        estimate = estimate_second_eigenvalue(complete_graph(40))
        assert estimate.second_eigenvalue < 1.0

    def test_ring_graph_is_a_poor_expander(self):
        # The cycle's lambda_2 = 2*cos(2*pi/n) approaches the degree 2, i.e.
        # relative_to_friedman approaches 1/sqrt(2)... well above a random
        # regular graph of the same size and degree >= 3.
        estimate = estimate_second_eigenvalue(ring_graph(64))
        assert estimate.second_eigenvalue > 1.9

    def test_rejects_irregular_or_tiny_graphs(self):
        path = Graph.from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(ConfigurationError):
            estimate_second_eigenvalue(path)
        with pytest.raises(ConfigurationError):
            estimate_second_eigenvalue(Graph.from_edges(2, [(0, 1)]))

    def test_expansion_profile_fields(self):
        graph = random_regular_graph(200, 6, RandomSource(seed=5))
        profile = spectral_expansion_profile(graph)
        assert profile["set_size"] == 100
        assert 0 <= profile["mixing_lower_bound"] <= profile["expected_cut"]
        assert profile["relative_to_friedman"] < 1.3

    def test_expansion_profile_invalid_set_size(self):
        graph = random_regular_graph(64, 4, RandomSource(seed=6))
        with pytest.raises(ConfigurationError):
            spectral_expansion_profile(graph, set_size=0)
        with pytest.raises(ConfigurationError):
            spectral_expansion_profile(graph, set_size=64)


class TestAsciiSeries:
    def test_basic_rendering(self):
        chart = ascii_series([1, 2, 4, 8, 16], title="growth")
        assert "growth" in chart
        assert "*" in chart
        assert chart.count("\n") >= 10

    def test_log_scale_and_constant_series(self):
        chart = ascii_series([5, 5, 5], log_scale=True)
        assert "*" in chart
        # All markers land on the bottom row for a constant series.
        marker_rows = [line for line in chart.splitlines() if "*" in line]
        assert len(marker_rows) == 1

    def test_long_series_is_resampled_to_width(self):
        chart = ascii_series(list(range(1000)), width=40)
        longest_line = max(len(line) for line in chart.splitlines())
        assert longest_line <= 40 + 15

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_series([])
        with pytest.raises(ConfigurationError):
            ascii_series([1, 2], width=1)


class TestInformedCurvePlot:
    def test_contains_both_panels(self):
        chart = ascii_informed_curve([1, 10, 100, 512, 512], n=512)
        assert "informed nodes per round" in chart
        assert "uninformed nodes per round" in chart
        assert "o" in chart and "*" in chart

    def test_rejects_out_of_range_counts(self):
        with pytest.raises(ConfigurationError):
            ascii_informed_curve([1, 600], n=512)
        with pytest.raises(ConfigurationError):
            ascii_informed_curve([], n=512)


class TestMultiSeries:
    def test_legend_lists_all_series(self):
        chart = ascii_multi_series({"push": [1, 2, 3], "pull": [3, 2, 1]}, title="cmp")
        assert "cmp" in chart
        assert "push" in chart and "pull" in chart
        assert "*" in chart and "o" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_multi_series({})
        with pytest.raises(ConfigurationError):
            ascii_multi_series({"empty": []})
        too_many = {f"s{i}": [1, 2] for i in range(9)}
        with pytest.raises(ConfigurationError):
            ascii_multi_series(too_many)
