"""Unit tests for the round engine.

These tests pin down the *semantics* of the simulator on tiny graphs where
every quantity can be computed by hand: delivery timing, transmission
accounting, early stopping, failure injection, and tracer integration.
"""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.engine import RoundEngine, run_broadcast
from repro.core.errors import SimulationError
from repro.core.node import NodeState
from repro.core.trace import RecordingTracer
from repro.failures.churn import UniformChurn
from repro.failures.message_loss import IndependentLoss
from repro.graphs.base import Graph
from repro.graphs.families import complete_graph, ring_graph
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.base import BroadcastProtocol
from repro.protocols.push import PushProtocol
from repro.protocols.push_pull import PushPullProtocol
from repro.protocols.pull import PullProtocol


class AlwaysPushEveryone(BroadcastProtocol):
    """Test double: every node calls every neighbour; informed nodes push."""

    name = "test-flood"

    def __init__(self, horizon: int = 10, fanout: int = 100) -> None:
        self._horizon = horizon
        self._fanout = fanout

    def horizon(self) -> int:
        return self._horizon

    def push_round(self, round_index: int) -> bool:
        return True

    def pull_round(self, round_index: int) -> bool:
        return False

    def fanout(self, state: NodeState, round_index: int) -> int:
        return self._fanout

    def wants_push(self, state: NodeState, round_index: int) -> bool:
        return state.informed

    def wants_pull(self, state: NodeState, round_index: int) -> bool:
        return False


class TestBasicSemantics:
    def test_two_node_push(self):
        graph = Graph.from_edges(2, [(0, 1)])
        result = run_broadcast(graph, AlwaysPushEveryone(), seed=1)
        assert result.success
        assert result.rounds_to_completion == 1
        assert result.total_push_transmissions == 1
        assert result.final_informed == 2

    def test_message_travels_one_hop_per_round_on_a_path(self, path_graph):
        # Flooding along a path: the message needs exactly 4 rounds to reach
        # node 4 from node 0 because deliveries commit at end of round.
        result = run_broadcast(path_graph, AlwaysPushEveryone(), source=0, seed=1)
        assert result.success
        assert result.rounds_to_completion == 4

    def test_informed_curve_is_monotone(self, small_regular_graph):
        result = run_broadcast(
            small_regular_graph, PushProtocol(n_estimate=64), seed=3
        )
        curve = result.informed_curve()
        assert all(a <= b for a, b in zip(curve, curve[1:]))
        assert curve[-1] == 64

    def test_flood_transmission_count_on_complete_graph(self):
        # Round 1: only the source is informed and pushes to all n-1 others.
        graph = complete_graph(5)
        config = SimulationConfig(max_rounds=1, stop_when_informed=False)
        result = run_broadcast(graph, AlwaysPushEveryone(), seed=1, config=config)
        assert result.total_push_transmissions == 4
        assert result.final_informed == 5

    def test_unknown_source_rejected(self, small_regular_graph):
        with pytest.raises(SimulationError):
            run_broadcast(small_regular_graph, PushProtocol(n_estimate=64), source=999)

    def test_non_zero_source(self, small_regular_graph):
        result = run_broadcast(
            small_regular_graph, PushProtocol(n_estimate=64), source=17, seed=2
        )
        assert result.source == 17
        assert result.success


class TestStoppingRules:
    def test_early_stop_vs_full_schedule(self, small_regular_graph):
        def protocol_factory():
            return PushProtocol(n_estimate=64)

        early = run_broadcast(small_regular_graph, protocol_factory(), seed=5)
        full = run_broadcast(
            small_regular_graph,
            protocol_factory(),
            seed=5,
            config=SimulationConfig(stop_when_informed=False),
        )
        assert early.rounds_executed <= full.rounds_executed
        assert full.rounds_executed == protocol_factory().horizon()
        assert early.rounds_to_completion == full.rounds_to_completion

    def test_max_rounds_caps_execution(self, small_regular_graph):
        result = run_broadcast(
            small_regular_graph,
            PushProtocol(n_estimate=64),
            seed=5,
            config=SimulationConfig(max_rounds=2),
        )
        assert result.rounds_executed == 2
        assert not result.success

    def test_unsuccessful_run_reports_partial_progress(self):
        ring = ring_graph(64)
        result = run_broadcast(
            ring,
            PushProtocol(n_estimate=64, horizon_override=3),
            seed=5,
        )
        assert not result.success
        assert result.rounds_to_completion is None
        assert 1 < result.final_informed < 64

    def test_history_collection_can_be_disabled(self, small_regular_graph):
        result = run_broadcast(
            small_regular_graph,
            PushProtocol(n_estimate=64),
            seed=5,
            config=SimulationConfig(collect_round_history=False),
        )
        assert result.history == []
        assert result.total_transmissions > 0


class TestDeterminismAndSeeding:
    def test_same_seed_same_result(self, small_regular_graph):
        a = run_broadcast(small_regular_graph, PushProtocol(n_estimate=64), seed=7)
        b = run_broadcast(small_regular_graph, PushProtocol(n_estimate=64), seed=7)
        assert a.rounds_to_completion == b.rounds_to_completion
        assert a.total_transmissions == b.total_transmissions
        assert a.informed_curve() == b.informed_curve()

    def test_different_seed_usually_differs(self, small_regular_graph):
        a = run_broadcast(small_regular_graph, PushProtocol(n_estimate=64), seed=7)
        b = run_broadcast(small_regular_graph, PushProtocol(n_estimate=64), seed=8)
        assert (
            a.informed_curve() != b.informed_curve()
            or a.total_transmissions != b.total_transmissions
        )


class TestFailureInjection:
    def test_total_loss_blocks_broadcast(self, small_regular_graph):
        result = run_broadcast(
            small_regular_graph,
            PushProtocol(n_estimate=64),
            seed=9,
            failure_model=IndependentLoss(transmission_loss_probability=1.0),
        )
        assert not result.success
        assert result.final_informed == 1
        assert result.total_lost_transmissions == result.total_transmissions > 0

    def test_partial_loss_slows_but_rarely_stops(self, medium_regular_graph):
        clean = run_broadcast(
            medium_regular_graph, PushProtocol(n_estimate=256), seed=9
        )
        lossy = run_broadcast(
            medium_regular_graph,
            PushProtocol(n_estimate=256),
            seed=9,
            failure_model=IndependentLoss(transmission_loss_probability=0.3),
        )
        assert lossy.success
        assert lossy.rounds_to_completion >= clean.rounds_to_completion
        assert lossy.total_lost_transmissions > 0

    def test_channel_failures_prevent_any_transmission(self, small_regular_graph):
        result = run_broadcast(
            small_regular_graph,
            PushProtocol(n_estimate=64),
            seed=9,
            failure_model=IndependentLoss(channel_failure_probability=1.0),
        )
        assert not result.success
        assert result.total_transmissions == 0

    def test_config_probabilities_build_failure_model(self, small_regular_graph):
        engine = RoundEngine(
            graph=small_regular_graph,
            protocol=PushProtocol(n_estimate=64),
            config=SimulationConfig(message_loss_probability=0.5),
            seed=1,
        )
        assert isinstance(engine.failure_model, IndependentLoss)


class TestPullAndCombined:
    def test_pull_completes_on_complete_graph(self):
        graph = complete_graph(32)
        result = run_broadcast(graph, PullProtocol(n_estimate=32), seed=4)
        assert result.success
        assert result.total_pull_transmissions > 0
        assert result.total_push_transmissions == 0

    def test_push_pull_counts_both_directions(self, medium_regular_graph):
        result = run_broadcast(
            medium_regular_graph, PushPullProtocol(n_estimate=256), seed=4
        )
        assert result.success
        assert result.total_pull_transmissions > 0
        assert result.total_push_transmissions > 0

    def test_algorithm1_phase_accounting(self, medium_regular_graph):
        result = run_broadcast(
            medium_regular_graph,
            Algorithm1(n_estimate=256),
            seed=4,
            config=SimulationConfig(stop_when_informed=False),
        )
        phases = result.transmissions_by_phase()
        assert phases.get("phase1", 0) > 0
        assert phases.get("phase2", 0) > 0
        assert phases.get("phase3", 0) > 0
        assert sum(phases.values()) == result.total_transmissions

    def test_channels_opened_reflects_full_model(self, medium_regular_graph):
        # Every node opens min(fanout, degree) channels per round regardless of
        # whether it transmits; with fanout 1 on a 256-node graph this is
        # exactly 256 channels per executed round.
        result = run_broadcast(
            medium_regular_graph, PushProtocol(n_estimate=256), seed=4
        )
        assert result.total_channels_opened == 256 * result.rounds_executed


class TestTracerIntegration:
    def test_tracer_sees_rounds_and_informs(self, small_regular_graph):
        tracer = RecordingTracer()
        result = run_broadcast(
            small_regular_graph,
            PushProtocol(n_estimate=64),
            seed=2,
            tracer=tracer,
        )
        starts = tracer.events_of_kind("round_start")
        ends = tracer.events_of_kind("round_end")
        informs = tracer.events_of_kind("informed")
        assert len(starts) == len(ends) == result.rounds_executed
        # Everyone except the source appears exactly once as an informed event.
        assert len(informs) == result.final_informed - 1

    def test_tracer_transmission_count_matches_metrics(self, small_regular_graph):
        tracer = RecordingTracer()
        result = run_broadcast(
            small_regular_graph,
            PushProtocol(n_estimate=64),
            seed=2,
            tracer=tracer,
        )
        assert len(tracer.events_of_kind("transmission")) == result.total_transmissions


class TestChurnIntegration:
    def test_broadcast_survives_mild_churn(self, medium_regular_graph):
        churn = UniformChurn(leave_rate=0.01, join_rate=0.01, target_degree=8)
        engine = RoundEngine(
            graph=medium_regular_graph.copy(),
            protocol=Algorithm1(n_estimate=256),
            seed=3,
            churn_model=churn,
        )
        result = engine.run(source=0)
        final_nodes = result.metadata["final_node_count"]
        assert result.final_informed >= 0.95 * final_nodes

    def test_metadata_records_models(self, small_regular_graph):
        result = run_broadcast(
            small_regular_graph, PushProtocol(n_estimate=64), seed=1
        )
        assert result.metadata["failure_model"]["model"] == "ReliableDelivery"
        assert result.metadata["churn_model"]["model"] == "NoChurn"
        assert result.metadata["protocol"]["name"] == "push"
