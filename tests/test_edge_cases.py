"""Edge-case tests: unusual graphs, extreme parameters, experiment options.

These cover behaviours a downstream user will eventually hit — fanout larger
than the degree, multigraphs from the raw pairing model, disconnected
networks, single-source corner cases — plus the parameter overrides of the
experiment modules that the default quick/full tiers do not exercise.
"""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.core.engine import run_broadcast
from repro.core.rng import RandomSource
from repro.experiments.exp_counterexample import run_experiment as run_counterexample
from repro.experiments.exp_round_complexity import run_experiment as run_rounds
from repro.experiments.workloads import SweepSizes
from repro.graphs.base import Graph
from repro.graphs.configuration_model import pairing_multigraph, random_regular_graph
from repro.graphs.families import complete_graph
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.push import PushProtocol
from repro.protocols.push_pull import PushPullProtocol


class TestUnusualGraphs:
    def test_fanout_larger_than_degree_calls_all_neighbours(self):
        # Algorithm 1 wants 4 distinct neighbours but the graph only has 3.
        graph = random_regular_graph(32, 3, RandomSource(seed=3))
        result = run_broadcast(graph, Algorithm1(n_estimate=32), seed=3)
        assert result.success
        # No round can open more than degree channels per node.
        for record in result.history:
            assert record.channels_opened <= 3 * 32

    def test_broadcast_on_raw_pairing_multigraph(self):
        # Self-loops and parallel edges from the configuration model must not
        # break the engine (self-loop calls are simply wasted channels).
        graph = pairing_multigraph(128, 6, RandomSource(seed=9))
        result = run_broadcast(graph, PushPullProtocol(n_estimate=128), seed=9)
        assert result.final_informed >= 0.9 * 128

    def test_two_node_graph(self):
        graph = Graph.from_edges(2, [(0, 1)])
        result = run_broadcast(graph, Algorithm1(n_estimate=2), seed=1)
        assert result.success
        assert result.rounds_to_completion == 1

    def test_disconnected_graph_never_completes(self):
        graph = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        result = run_broadcast(graph, PushPullProtocol(n_estimate=6), seed=2)
        assert not result.success
        assert result.final_informed == 3

    def test_star_graph_completes_with_pull_help(self):
        star = Graph.from_edges(9, [(0, i) for i in range(1, 9)])
        result = run_broadcast(star, PushPullProtocol(n_estimate=9), source=0, seed=4)
        assert result.success

    def test_source_at_highest_index(self):
        graph = complete_graph(16)
        result = run_broadcast(graph, PushProtocol(n_estimate=16), source=15, seed=5)
        assert result.success
        assert result.source == 15


class TestConfigurationInteractions:
    def test_full_schedule_with_loss_still_counts_lost_messages(self):
        graph = random_regular_graph(64, 6, RandomSource(seed=6))
        config = SimulationConfig(
            stop_when_informed=False, message_loss_probability=0.5
        )
        result = run_broadcast(graph, PushProtocol(n_estimate=64), seed=6, config=config)
        assert result.total_lost_transmissions > 0
        assert result.total_lost_transmissions < result.total_transmissions

    def test_max_rounds_shorter_than_horizon_wins(self):
        graph = random_regular_graph(64, 6, RandomSource(seed=7))
        protocol = Algorithm1(n_estimate=64)
        config = SimulationConfig(max_rounds=3, stop_when_informed=False)
        result = run_broadcast(graph, protocol, seed=7, config=config)
        assert result.rounds_executed == 3 < protocol.horizon()

    def test_history_phases_cover_all_executed_rounds(self):
        graph = random_regular_graph(64, 6, RandomSource(seed=8))
        config = SimulationConfig(stop_when_informed=False)
        result = run_broadcast(graph, Algorithm1(n_estimate=64), seed=8, config=config)
        assert len(result.history) == result.rounds_executed
        assert all(record.phase.startswith("phase") for record in result.history)


class TestExperimentOptions:
    def test_round_complexity_with_custom_degree_and_sizes(self):
        table = run_rounds(
            quick=True,
            degree=6,
            sizes=SweepSizes(sizes=[128], repetitions=2),
        )
        assert len(table.rows) == 3
        assert all(row["n"] == 128 for row in table.rows)
        assert "d = 6" in table.title

    def test_counterexample_structure(self):
        table = run_counterexample(quick=True, base_nodes=64, degree=6, clique_size=3)
        assert len(table.rows) == 4
        assert {row["topology"] for row in table.rows} == {
            "random-regular",
            "product-K5",
        }
        assert all(row["success_rate"] == 1.0 for row in table.rows)
        one_call_rows = [r for r in table.rows if r["protocol"] == "push-pull-1"]
        assert all(row["speedup_vs_one_call"] == pytest.approx(1.0) for row in one_call_rows)
