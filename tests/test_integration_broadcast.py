"""Integration tests: every protocol completes a broadcast on realistic graphs.

These tests exercise the whole stack (graph generation → protocol → engine →
metrics) at sizes where the paper's qualitative claims are already visible,
and pin down the cross-protocol relationships the experiments rely on.
"""

from __future__ import annotations

import math

import pytest

from repro.core.config import SimulationConfig
from repro.core.engine import run_broadcast
from repro.core.metrics import aggregate_runs
from repro.core.rng import RandomSource
from repro.experiments.runner import repeat_broadcast
from repro.graphs.configuration_model import connected_random_regular_graph
from repro.protocols.registry import available_protocols, build_protocol
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.push import PushProtocol


@pytest.fixture(scope="module")
def broadcast_graph():
    """One 512-node, 8-regular graph shared by the module's tests."""
    return connected_random_regular_graph(512, 8, RandomSource(seed=321))


class TestAllProtocolsComplete:
    @pytest.mark.parametrize("protocol_name", available_protocols())
    def test_protocol_informs_every_node(self, broadcast_graph, protocol_name):
        results = repeat_broadcast(
            graph=broadcast_graph,
            protocol_factory=lambda n: build_protocol(protocol_name, n),
            n_estimate=512,
            seeds=[101, 202],
        )
        assert all(result.success for result in results), protocol_name
        assert all(result.final_informed == 512 for result in results)

    @pytest.mark.parametrize("protocol_name", ["algorithm1", "algorithm2", "push", "push-pull"])
    def test_rounds_are_logarithmic(self, broadcast_graph, protocol_name):
        results = repeat_broadcast(
            graph=broadcast_graph,
            protocol_factory=lambda n: build_protocol(protocol_name, n),
            n_estimate=512,
            seeds=[7, 8, 9],
        )
        aggregate = aggregate_runs(results)
        assert aggregate.rounds.mean <= 4 * math.log2(512)


class TestPaperShapeClaims:
    def test_algorithm1_beats_push_on_rounds(self, broadcast_graph):
        seeds = [11, 12, 13]
        algorithm1 = aggregate_runs(
            repeat_broadcast(
                broadcast_graph,
                lambda n: Algorithm1(n_estimate=n),
                n_estimate=512,
                seeds=seeds,
            )
        )
        push = aggregate_runs(
            repeat_broadcast(
                broadcast_graph,
                lambda n: PushProtocol(n_estimate=n),
                n_estimate=512,
                seeds=seeds,
            )
        )
        assert algorithm1.rounds.mean < push.rounds.mean

    def test_phase1_transmissions_are_linear_in_n(self, broadcast_graph):
        # Each node pushes at most once (over 4 channels) during Phase 1, so
        # Phase-1 transmissions are at most 4n.
        result = run_broadcast(
            broadcast_graph,
            Algorithm1(n_estimate=512),
            seed=77,
            config=SimulationConfig(stop_when_informed=False),
        )
        assert result.transmissions_by_phase()["phase1"] <= 4 * 512

    def test_algorithm1_full_schedule_matches_loglog_budget(self, broadcast_graph):
        # Full-schedule cost is bounded by the explicit-constant envelope
        # fanout·n·(2 + ceil(alpha·loglog n)) plus the tiny phase-4 term.
        result = run_broadcast(
            broadcast_graph,
            Algorithm1(n_estimate=512),
            seed=78,
            config=SimulationConfig(stop_when_informed=False),
        )
        loglog = math.log2(math.log2(512))
        envelope = 4 * 512 * (2 + math.ceil(loglog)) + 4 * 512
        assert result.total_transmissions <= envelope

    def test_lower_bound_holds_for_one_call_push_pull(self, broadcast_graph):
        # Theorem 1 (with its tiny constant) is comfortably dominated by the
        # measured cost of the best one-call protocol we have.
        from repro.analysis.bounds import lower_bound_transmissions

        results = repeat_broadcast(
            broadcast_graph,
            lambda n: build_protocol("push-pull", n),
            n_estimate=512,
            seeds=[21, 22],
        )
        bound = lower_bound_transmissions(512, 8, constant=1.0 / 16.0)
        assert all(result.total_transmissions > bound for result in results)

    def test_determinism_end_to_end(self, broadcast_graph):
        a = run_broadcast(broadcast_graph, Algorithm1(n_estimate=512), seed=5)
        b = run_broadcast(broadcast_graph, Algorithm1(n_estimate=512), seed=5)
        assert a.total_transmissions == b.total_transmissions
        assert a.informed_curve() == b.informed_curve()
