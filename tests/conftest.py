"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.rng import RandomSource
from repro.graphs.base import Graph
from repro.graphs.configuration_model import random_regular_graph
from repro.graphs.families import complete_graph


@pytest.fixture
def rng() -> RandomSource:
    """A deterministic randomness source."""
    return RandomSource(seed=12345)


@pytest.fixture
def small_regular_graph(rng: RandomSource) -> Graph:
    """A connected-ish random 4-regular graph on 64 nodes."""
    return random_regular_graph(64, 4, rng.spawn("fixture-graph"))


@pytest.fixture
def medium_regular_graph(rng: RandomSource) -> Graph:
    """A random 8-regular graph on 256 nodes (used by integration tests)."""
    return random_regular_graph(256, 8, rng.spawn("fixture-graph-medium"))


@pytest.fixture
def tiny_complete_graph() -> Graph:
    """The complete graph on 8 nodes, handy for exact-count assertions."""
    return complete_graph(8)


@pytest.fixture
def path_graph() -> Graph:
    """A 5-node path graph: 0-1-2-3-4."""
    return Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
