"""Batch row compaction: bit-parity, trigger mechanics, and index remapping.

The batched engine's compaction contract is that remapping completed
replications out of the ``(R, n)`` state is *invisible* in the results: a
batch run with ``batch_row_compaction=True`` (the default) is bit-identical —
per-round history, transmissions, channel accounting, quasirandom pointer
tables — to the same run with compaction disabled, and every row stays
bit-identical to the corresponding single-seed vectorized run.  The natural
stress case is a gnp graph near the connectivity threshold, where completion
rounds are maximally uneven and rows leave the batch at many different
rounds.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.engine import run_broadcast, run_broadcast_batch
from repro.core.node import VectorState
from repro.core.rng import RandomSource
from repro.graphs.families import gnp_graph
from repro.graphs.configuration_model import random_regular_graph
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.algorithm2 import Algorithm2
from repro.protocols.pull import PullProtocol
from repro.protocols.push import PushProtocol
from repro.protocols.push_pull import PushPullProtocol
from repro.protocols.quasirandom import QuasirandomPushProtocol

SEEDS = list(range(300, 312))  # 12 replications with staggered completions

PROTOCOL_FACTORIES = {
    "push": lambda n: PushProtocol(n_estimate=n),
    "pull": lambda n: PullProtocol(n_estimate=n),
    "push-pull": lambda n: PushPullProtocol(n_estimate=n),
    "algorithm1": lambda n: Algorithm1(n_estimate=n),
    "algorithm2": lambda n: Algorithm2(n_estimate=n),
    "quasirandom": lambda n: QuasirandomPushProtocol(n_estimate=n),
}


@pytest.fixture(scope="module")
def gnp_near_threshold():
    # p slightly above ln(n)/n: connected (so every replication completes)
    # but with low-degree vertices that spread the completion rounds out.
    n = 1024
    graph = gnp_graph(n, 1.3 * math.log(n) / n, RandomSource(seed=11))
    graph.csr()
    return graph


def run_signature(result):
    """Everything a RunResult reports except metadata, as a comparable value."""
    return (
        result.n,
        result.protocol,
        result.source,
        result.success,
        result.rounds_executed,
        result.rounds_to_completion,
        result.total_push_transmissions,
        result.total_pull_transmissions,
        result.total_channels_opened,
        result.total_lost_transmissions,
        result.final_informed,
        tuple(result.informed_curve()),
        tuple(
            (record.round_index, record.informed_before, record.informed_after,
             record.push_transmissions, record.pull_transmissions,
             record.channels_opened, record.lost_transmissions, record.phase)
            for record in result.history
        ),
        tuple(sorted(result.phase_transmissions.items())),
    )


def batch_pair(graph, factory, seeds, **config_kwargs):
    """The same batch run with compaction on and off."""
    n = graph.node_count
    on = run_broadcast_batch(
        graph,
        factory(n),
        seeds,
        config=SimulationConfig(
            engine="vectorized", batch_row_compaction=True, **config_kwargs
        ),
    )
    off = run_broadcast_batch(
        graph,
        factory(n),
        seeds,
        config=SimulationConfig(
            engine="vectorized", batch_row_compaction=False, **config_kwargs
        ),
    )
    return on, off


class TestCompactionBitParity:
    @pytest.mark.parametrize("protocol_name", sorted(PROTOCOL_FACTORIES))
    def test_on_off_identical_with_uneven_completions(
        self, protocol_name, gnp_near_threshold
    ):
        on, off = batch_pair(
            gnp_near_threshold, PROTOCOL_FACTORIES[protocol_name], SEEDS
        )
        completions = {r.rounds_to_completion for r in on}
        # The gnp stress case only means something if rows actually finish
        # in different rounds (so compaction fires mid-run, repeatedly).
        assert len(completions) > 1, "expected staggered completion rounds"
        for a, b in zip(on, off):
            assert run_signature(a) == run_signature(b)

    @pytest.mark.parametrize("protocol_name", ["push", "quasirandom", "algorithm1"])
    def test_compacted_rows_match_single_runs(
        self, protocol_name, gnp_near_threshold
    ):
        factory = PROTOCOL_FACTORIES[protocol_name]
        n = gnp_near_threshold.node_count
        config = SimulationConfig(engine="vectorized", batch_row_compaction=True)
        batched = run_broadcast_batch(
            gnp_near_threshold, factory(n), SEEDS, config=config
        )
        for seed, row in zip(SEEDS, batched):
            single = run_broadcast(
                gnp_near_threshold, factory(n), seed=seed, config=config
            )
            assert run_signature(single) == run_signature(row)

    def test_single_row_batch(self, gnp_near_threshold):
        on, off = batch_pair(
            gnp_near_threshold, PROTOCOL_FACTORIES["quasirandom"], [777]
        )
        assert run_signature(on[0]) == run_signature(off[0])

    def test_with_transmission_loss(self, gnp_near_threshold):
        on, off = batch_pair(
            gnp_near_threshold,
            PROTOCOL_FACTORIES["push-pull"],
            SEEDS,
            message_loss_probability=0.2,
        )
        for a, b in zip(on, off):
            assert run_signature(a) == run_signature(b)

    def test_with_channel_failure(self, gnp_near_threshold):
        on, off = batch_pair(
            gnp_near_threshold,
            PROTOCOL_FACTORIES["push"],
            SEEDS,
            channel_failure_probability=0.15,
        )
        for a, b in zip(on, off):
            assert run_signature(a) == run_signature(b)

    def test_full_schedule_disables_compaction_harmlessly(self, gnp_near_threshold):
        # Without early stopping no row ever leaves the loop, so compaction
        # never fires; the toggle must still be a no-op on the results.
        on, off = batch_pair(
            gnp_near_threshold,
            PROTOCOL_FACTORIES["push"],
            SEEDS[:6],
            stop_when_informed=False,
        )
        for a, b in zip(on, off):
            assert run_signature(a) == run_signature(b)

    def test_regular_graph_parity(self):
        graph = random_regular_graph(512, 8, RandomSource(seed=42), strategy="repair")
        graph.csr()
        on, off = batch_pair(graph, PROTOCOL_FACTORIES["algorithm2"], SEEDS)
        for a, b in zip(on, off):
            assert run_signature(a) == run_signature(b)


class TestCompactionMechanics:
    def test_vector_compact_rows_hook_fires_and_shrinks_tables(
        self, gnp_near_threshold
    ):
        calls = []

        class Probe(QuasirandomPushProtocol):
            def vector_compact_rows(self, keep, n, old_batch):
                calls.append((keep.size, old_batch, self._pointer_table.shape))
                super().vector_compact_rows(keep, n, old_batch)
                assert self._pointer_table.shape == (keep.size, n)

        n = gnp_near_threshold.node_count
        run_broadcast_batch(
            gnp_near_threshold,
            Probe(n_estimate=n),
            SEEDS,
            config=SimulationConfig(engine="vectorized"),
        )
        assert calls, "compaction never fired on the staggered gnp batch"
        for kept, old_batch, shape in calls:
            assert kept < old_batch
            assert shape == (old_batch, n)

    def test_compact_flat_indices_remaps_rows(self):
        n = 10
        # rows: 0 -> {1, 9}, 1 -> {5}, 2 -> {}, 3 -> {0, 2}
        flat = np.array([1, 9, 15, 30, 32], dtype=np.int32)
        keep = np.array([0, 3])
        out = VectorState.compact_flat_indices(flat, keep, n=n, old_batch=4)
        assert out.dtype == flat.dtype
        assert out.tolist() == [1, 9, 10, 12]

    def test_compact_flat_indices_empty_result(self):
        flat = np.array([3, 7], dtype=np.int64)  # both in row 0
        out = VectorState.compact_flat_indices(
            flat, np.array([1]), n=10, old_batch=2
        )
        assert out.size == 0
        assert out.dtype == flat.dtype

    def test_compact_rows_keeps_informed_flat_invariant(self):
        state = VectorState(n=6, source=2, batch=4)
        state.enable_index_tracking()
        state.commit_delivered(np.array([0, 7, 13, 14, 21]), round_index=1)
        state.compact_rows(np.array([1, 3]))
        assert state.batch == 2
        assert state.informed.shape == (2, 6)
        expected = np.flatnonzero(state.informed.reshape(-1))
        assert state.informed_flat.tolist() == expected.tolist()
        assert state.informed_count.tolist() == [
            int(state.informed[0].sum()),
            int(state.informed[1].sum()),
        ]
