"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.n == 1024
        assert args.protocol == "algorithm1"
        assert args.full_schedule is False

    def test_simulate_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--protocol", "bogus"])

    def test_experiment_arguments(self):
        args = build_parser().parse_args(["experiment", "E1", "--full"])
        assert args.experiment_id == "E1"
        assert args.full is True

    def test_simulate_batch_flag(self):
        assert build_parser().parse_args(["simulate"]).batch is True
        assert build_parser().parse_args(["simulate", "--no-batch"]).batch is False
        assert build_parser().parse_args(["simulate", "--batch"]).batch is True


class TestCommands:
    def test_list_protocols(self, capsys):
        assert main(["list-protocols"]) == 0
        output = capsys.readouterr().out
        assert "algorithm1" in output
        assert "push-pull" in output

    def test_list_graphs_shows_families_and_kwargs(self, capsys):
        assert main(["list-graphs"]) == 0
        output = capsys.readouterr().out
        assert "connected-random-regular" in output
        assert "hypercube" in output
        assert "dimension" in output  # kwargs help text

    def test_list_failures_shows_models_and_kwargs(self, capsys):
        assert main(["list-failures"]) == 0
        output = capsys.readouterr().out
        assert "reliable" in output
        assert "independent-loss" in output
        assert "transmission_loss_probability" in output

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E12" in output

    def test_simulate_small_run(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--n",
                "128",
                "--d",
                "6",
                "--protocol",
                "push",
                "--seeds",
                "2",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "push" in output
        assert "aggregate over 2 runs" in output
        assert "batched x2" in output

    def test_simulate_no_batch_runs_per_seed(self, capsys):
        exit_code = main(
            ["simulate", "--n", "128", "--d", "6", "--protocol", "push",
             "--seeds", "2", "--no-batch"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "aggregate over 2 runs" in output
        assert "batched" not in output

    def test_simulate_with_loss_and_full_schedule(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--n",
                "128",
                "--d",
                "6",
                "--protocol",
                "algorithm1",
                "--seeds",
                "1",
                "--loss",
                "0.1",
                "--full-schedule",
            ]
        )
        assert exit_code == 0
        assert "algorithm1" in capsys.readouterr().out

    def test_experiment_command_unknown_id(self):
        with pytest.raises(Exception):
            main(["experiment", "E99"])

    def test_simulate_dump_spec_to_stdout(self, capsys):
        exit_code = main(
            ["simulate", "--n", "128", "--d", "6", "--protocol", "push",
             "--seeds", "2", "--loss", "0.1", "--dump-spec"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["graph"]["params"] == {"n": 128, "d": 6}
        assert payload["protocol"]["name"] == "push"
        assert payload["repetitions"] == 2
        assert payload["config"] == {"message_loss_probability": 0.1}

    def test_simulate_dump_spec_reproduces_the_run(self, tmp_path, capsys):
        from repro.experiments.results_io import load_table_json

        simulate_args = ["simulate", "--n", "128", "--d", "6", "--protocol",
                         "push", "--seeds", "3"]
        spec_path = tmp_path / "sim.json"
        assert main(simulate_args + ["--dump-spec", str(spec_path)]) == 0
        direct_path = tmp_path / "direct.json"
        assert main(simulate_args + ["--save", str(direct_path)]) == 0
        via_spec_path = tmp_path / "via_spec.json"
        assert main(["run-spec", str(spec_path), "--save", str(via_spec_path)]) == 0
        capsys.readouterr()

        direct_rows = load_table_json(direct_path).rows
        spec_rows = load_table_json(via_spec_path).rows
        # Same seeds, same engine: the per-run rounds of the direct invocation
        # must match the spec-driven aggregate exactly.
        per_run_rounds = [row["rounds"] for row in direct_rows]
        assert len(per_run_rounds) == 3
        assert spec_rows[0]["rounds_mean"] == sum(per_run_rounds) / len(per_run_rounds)
        assert spec_rows[0]["rounds_max"] == max(per_run_rounds)
        assert spec_rows[0]["tx_per_node"] == pytest.approx(
            sum(row["tx_per_node"] for row in direct_rows) / len(direct_rows)
        )

    def test_run_spec_command(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        assert main(
            ["simulate", "--n", "128", "--d", "6", "--seeds", "2",
             "--dump-spec", str(spec_path)]
        ) == 0
        capsys.readouterr()
        save_path = tmp_path / "out.json"
        assert main(["run-spec", str(spec_path), "--save", str(save_path)]) == 0
        output = capsys.readouterr().out
        assert "scenario: simulate" in output
        assert "success_rate" in output
        saved = json.loads(save_path.read_text())
        assert saved["metadata"]["spec"]["graph"]["params"]["n"] == 128

    def test_run_spec_missing_file_raises_configuration_error(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run-spec", "/nonexistent/spec.json"])

    def test_p2p_command(self, capsys):
        exit_code = main(
            [
                "p2p",
                "--peers",
                "64",
                "--d",
                "6",
                "--rule",
                "algorithm1",
                "--updates",
                "1",
                "--rounds",
                "2",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "replication rate" in output
        assert "replicas agree" in output

    def test_p2p_command_with_churn_and_anti_entropy(self, capsys):
        exit_code = main(
            [
                "p2p",
                "--peers",
                "64",
                "--d",
                "6",
                "--rule",
                "push",
                "--updates",
                "1",
                "--rounds",
                "2",
                "--churn",
                "0.02",
                "--anti-entropy",
                "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "divergence after repair" in output
