"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.n == 1024
        assert args.protocol == "algorithm1"
        assert args.full_schedule is False

    def test_simulate_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--protocol", "bogus"])

    def test_experiment_arguments(self):
        args = build_parser().parse_args(["experiment", "E1", "--full"])
        assert args.experiment_id == "E1"
        assert args.full is True

    def test_simulate_batch_flag(self):
        assert build_parser().parse_args(["simulate"]).batch is True
        assert build_parser().parse_args(["simulate", "--no-batch"]).batch is False
        assert build_parser().parse_args(["simulate", "--batch"]).batch is True


class TestCommands:
    def test_list_protocols(self, capsys):
        assert main(["list-protocols"]) == 0
        output = capsys.readouterr().out
        assert "algorithm1" in output
        assert "push-pull" in output

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E12" in output

    def test_simulate_small_run(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--n",
                "128",
                "--d",
                "6",
                "--protocol",
                "push",
                "--seeds",
                "2",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "push" in output
        assert "aggregate over 2 runs" in output
        assert "batched x2" in output

    def test_simulate_no_batch_runs_per_seed(self, capsys):
        exit_code = main(
            ["simulate", "--n", "128", "--d", "6", "--protocol", "push",
             "--seeds", "2", "--no-batch"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "aggregate over 2 runs" in output
        assert "batched" not in output

    def test_simulate_with_loss_and_full_schedule(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--n",
                "128",
                "--d",
                "6",
                "--protocol",
                "algorithm1",
                "--seeds",
                "1",
                "--loss",
                "0.1",
                "--full-schedule",
            ]
        )
        assert exit_code == 0
        assert "algorithm1" in capsys.readouterr().out

    def test_experiment_command_unknown_id(self):
        with pytest.raises(Exception):
            main(["experiment", "E99"])

    def test_p2p_command(self, capsys):
        exit_code = main(
            [
                "p2p",
                "--peers",
                "64",
                "--d",
                "6",
                "--rule",
                "algorithm1",
                "--updates",
                "1",
                "--rounds",
                "2",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "replication rate" in output
        assert "replicas agree" in output

    def test_p2p_command_with_churn_and_anti_entropy(self, capsys):
        exit_code = main(
            [
                "p2p",
                "--peers",
                "64",
                "--d",
                "6",
                "--rule",
                "push",
                "--updates",
                "1",
                "--rounds",
                "2",
                "--churn",
                "0.02",
                "--anti-entropy",
                "5",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "divergence after repair" in output
