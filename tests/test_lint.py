"""Tests for ``repro.lint`` — the determinism-contract checker.

Every rule gets flag/no-flag fixture pairs driven through
``Linter.lint_sources`` (in-memory sources, no temp files), plus coverage of
the suppression grammar, the JSON report schema, baseline diffing, the CLI
exit-code contract, and two meta-tests: the repo's own source lints clean,
and the rule catalogue in ``docs/API.md`` §11 matches the registry.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    LINT_SCHEMA_VERSION,
    Diagnostic,
    Linter,
    all_rules,
    apply_baseline,
    classify_zone,
    load_baseline,
    parse_report,
    render_json,
    render_text,
    write_baseline,
)
from repro.lint.engine import DEFAULT_TARGETS, SYNTAX_RULE_ID
from repro.lint.rule import rules_by_id
from repro.core.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parent.parent

# Rule-scoped linters: fixture snippets should only ever trip the rule under
# test, but running a single rule keeps failures readable when they do not.


def lint_one(rule_id: str, sources) -> list:
    """Run a single rule over ``{relpath: source}`` and return diagnostics."""
    report = Linter(rules=rules_by_id([rule_id])).lint_sources(sources)
    return report.diagnostics


def lint_all(sources):
    return Linter().lint_sources(sources)


# ---------------------------------------------------------------------------
# Zones
# ---------------------------------------------------------------------------


class TestZones:
    def test_classification(self):
        assert classify_zone("src/repro/core/engine.py") == "package"
        assert classify_zone("src/repro/dist/sink.py") == "package"
        assert classify_zone("benchmarks/bench_micro.py") == "benchmarks"
        assert classify_zone("examples/basic.py") == "examples"
        assert classify_zone("tests/test_engine.py") == "tests"
        assert classify_zone("setup.py") == "other"

    def test_tests_zone_is_not_patrolled_by_rng_rule(self):
        # The test suite constructs adversarial RNG on purpose.
        assert lint_one("RNG001", {"tests/test_x.py": "import random\n"}) == []

    def test_other_zone_is_never_patrolled(self):
        sources = {"scripts/tool.py": "import random\nseed = hash('x')\n"}
        assert lint_all(sources).diagnostics == []


# ---------------------------------------------------------------------------
# RNG001 — rng-discipline
# ---------------------------------------------------------------------------


class TestRngDiscipline:
    def test_import_random_flagged(self):
        diags = lint_one("RNG001", {"src/repro/x.py": "import random\n"})
        assert [d.rule for d in diags] == ["RNG001"]
        assert diags[0].line == 1

    def test_import_numpy_random_flagged(self):
        for src in (
            "import numpy.random\n",
            "import numpy.random as npr\n",
            "from numpy import random\n",
            "from numpy.random import default_rng\n",
        ):
            diags = lint_one("RNG001", {"src/repro/x.py": src})
            assert diags, f"not flagged: {src!r}"

    def test_aliased_call_resolved_through_imports(self):
        src = "import numpy as np\n\ndef f():\n    return np.random.default_rng(0)\n"
        diags = lint_one("RNG001", {"src/repro/x.py": src})
        assert len(diags) == 1
        assert diags[0].line == 4
        assert "numpy.random.default_rng" in diags[0].message

    def test_os_urandom_flagged(self):
        src = "import os\n\ntoken = os.urandom(16)\n"
        diags = lint_one("RNG001", {"src/repro/x.py": src})
        assert [d.rule for d in diags] == ["RNG001"]

    def test_secrets_and_uuid_flagged(self):
        diags = lint_one(
            "RNG001", {"src/repro/x.py": "import secrets\nimport uuid\n"}
        )
        assert len(diags) == 2

    def test_core_rng_module_is_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert lint_one("RNG001", {"src/repro/core/rng.py": src}) == []

    def test_random_source_usage_clean(self):
        src = (
            "from repro.core.rng import RandomSource\n"
            "rng = RandomSource(seed=1, name='x').generator\n"
            "value = rng.standard_normal(4)\n"
        )
        assert lint_one("RNG001", {"src/repro/x.py": src}) == []

    def test_benchmarks_zone_patrolled(self):
        assert lint_one("RNG001", {"benchmarks/b.py": "import random\n"})


# ---------------------------------------------------------------------------
# SEED001 — seed-stability
# ---------------------------------------------------------------------------


class TestSeedStability:
    def test_builtin_hash_flagged(self):
        diags = lint_one("SEED001", {"src/repro/x.py": "seed = hash('label')\n"})
        assert [d.rule for d in diags] == ["SEED001"]
        assert "PYTHONHASHSEED" in diags[0].message

    def test_e5_replication_seed_pattern_flagged(self):
        # Regression guard for the exact bug class PR 3 removed: experiment
        # E5 seeded replications with builtin hash(), which is randomised
        # per process, so every worker ran different streams.
        src = (
            "def replication_seeds(n, reps):\n"
            "    return [hash(f'E5-{n}-{i}') for i in range(reps)]\n"
        )
        diags = lint_one("SEED001", {"src/repro/experiments/exp_e5.py": src})
        assert len(diags) == 1
        assert diags[0].rule == "SEED001"
        assert diags[0].line == 2

    def test_id_flagged(self):
        assert lint_one("SEED001", {"src/repro/x.py": "key = id(object())\n"})

    def test_wall_clock_flagged(self):
        for src in (
            "import time\nstamp = time.time()\n",
            "import time\nstamp = time.time_ns()\n",
            "from time import time\nstamp = time()\n",
            "from time import time as now\nstamp = now()\n",
            "import datetime\nstamp = datetime.datetime.now()\n",
            "from datetime import datetime\nstamp = datetime.utcnow()\n",
        ):
            assert lint_one("SEED001", {"src/repro/x.py": src}), f"missed: {src!r}"

    def test_monotonic_timing_not_flagged(self):
        src = (
            "import time\n"
            "start = time.perf_counter()\n"
            "elapsed = time.monotonic() - start\n"
        )
        assert lint_one("SEED001", {"src/repro/x.py": src}) == []

    def test_method_named_hash_not_flagged(self):
        src = "digest = obj.hash()\n"
        assert lint_one("SEED001", {"src/repro/x.py": src}) == []


# ---------------------------------------------------------------------------
# VEC001 — vector-hook-contract
# ---------------------------------------------------------------------------

_CONTRACT_ROOT = """
class BroadcastProtocol:
    supports_vectorized = False
    uses_index_pools = False
    has_custom_vector_targets = False

    def vector_fanout(self, round_index):
        raise NotImplementedError("vectorized hooks not provided")

    def vector_wants_push(self, states):
        raise NotImplementedError("vectorized hooks not provided")

    def vector_wants_pull(self, states):
        raise NotImplementedError("vectorized hooks not provided")
"""


class TestVectorHookContract:
    def test_flag_without_hooks_flagged_at_flag_line(self):
        src = _CONTRACT_ROOT + (
            "\n\nclass Fast(BroadcastProtocol):\n"
            "    supports_vectorized = True\n"
        )
        diags = lint_one("VEC001", {"src/repro/protocols/x.py": src})
        assert len(diags) == 1
        assert diags[0].rule == "VEC001"
        assert "Fast" in diags[0].message
        # Anchored at the flag assignment, not the class statement.
        flag_line = src.splitlines().index("    supports_vectorized = True") + 1
        assert diags[0].line == flag_line

    def test_complete_hooks_clean(self):
        src = _CONTRACT_ROOT + (
            "\n\nclass Fast(BroadcastProtocol):\n"
            "    supports_vectorized = True\n"
            "    def vector_fanout(self, round_index):\n"
            "        return 1\n"
            "    def vector_wants_push(self, states):\n"
            "        return states\n"
            "    def vector_wants_pull(self, states):\n"
            "        return states\n"
        )
        assert lint_one("VEC001", {"src/repro/protocols/x.py": src}) == []

    def test_partial_hooks_flagged(self):
        src = _CONTRACT_ROOT + (
            "\n\nclass Fast(BroadcastProtocol):\n"
            "    supports_vectorized = True\n"
            "    def vector_fanout(self, round_index):\n"
            "        return 1\n"
        )
        diags = lint_one("VEC001", {"src/repro/protocols/x.py": src})
        assert len(diags) == 1
        assert "vector_wants_push" in diags[0].message

    def test_raising_stub_does_not_satisfy_contract(self):
        # The contract root's raising stubs exist so the scalar engine gets
        # a clean error; inheriting them is not an implementation.
        src = _CONTRACT_ROOT + (
            "\n\nclass Fast(BroadcastProtocol):\n"
            "    supports_vectorized = True\n"
            "    def vector_fanout(self, round_index):\n"
            "        raise NotImplementedError\n"
            "    def vector_wants_push(self, states):\n"
            "        return states\n"
            "    def vector_wants_pull(self, states):\n"
            "        return states\n"
        )
        diags = lint_one("VEC001", {"src/repro/protocols/x.py": src})
        assert len(diags) == 1
        assert "vector_fanout" in diags[0].message

    def test_hooks_via_intermediate_base_in_another_file(self):
        base = _CONTRACT_ROOT + (
            "\n\nclass VectorMixin(BroadcastProtocol):\n"
            "    def vector_fanout(self, round_index):\n"
            "        return 1\n"
            "    def vector_wants_push(self, states):\n"
            "        return states\n"
            "    def vector_wants_pull(self, states):\n"
            "        return states\n"
        )
        leaf = (
            "from .base import VectorMixin\n\n\n"
            "class Fast(VectorMixin):\n"
            "    supports_vectorized = True\n"
        )
        sources = {
            "src/repro/protocols/base.py": base,
            "src/repro/protocols/fast.py": leaf,
        }
        assert lint_one("VEC001", sources) == []

    def test_contract_root_itself_clean(self):
        # Declaring the flag False is the interface, not a violation.
        assert lint_one("VEC001", {"src/repro/protocols/base.py": _CONTRACT_ROOT}) == []

    def test_index_pools_any_semantics(self):
        flagged = _CONTRACT_ROOT + (
            "\n\nclass Pooled(BroadcastProtocol):\n"
            "    uses_index_pools = True\n"
        )
        ok = flagged + (
            "    def vector_caller_pool(self, rng):\n"
            "        return None\n"
        )
        assert lint_one("VEC001", {"src/repro/protocols/x.py": flagged})
        assert lint_one("VEC001", {"src/repro/protocols/x.py": ok}) == []

    def test_custom_targets_contract(self):
        src = _CONTRACT_ROOT + (
            "\n\nclass Quasi(BroadcastProtocol):\n"
            "    has_custom_vector_targets = True\n"
        )
        diags = lint_one("VEC001", {"src/repro/protocols/x.py": src})
        assert len(diags) == 1
        assert "vector_call_targets" in diags[0].message


_CHURN_CONTRACT_ROOT = '''\
class ChurnModel:
    """Fake contract root mirroring repro.failures.churn.ChurnModel."""

    supports_vectorized = False

    def vector_apply(self, round_index, ops, rng):
        raise NotImplementedError("bulk hook not provided")
'''


class TestChurnModelContract:
    """VEC001's scoped contract for ChurnModel descendants.

    A churn model opting into the vectorized engine promises the single bulk
    hook ``vector_apply`` — not the protocol triple.  The rule must pick the
    contract by class ancestry, not by file location.
    """

    def test_flag_without_vector_apply_flagged(self):
        src = _CHURN_CONTRACT_ROOT + (
            "\n\nclass Bursty(ChurnModel):\n"
            "    supports_vectorized = True\n"
        )
        diags = lint_one("VEC001", {"src/repro/failures/x.py": src})
        assert len(diags) == 1
        assert "vector_apply" in diags[0].message
        # The protocol triple must not be demanded of a churn model.
        assert "vector_fanout" not in diags[0].message

    def test_flag_with_vector_apply_clean(self):
        src = _CHURN_CONTRACT_ROOT + (
            "\n\nclass Bursty(ChurnModel):\n"
            "    supports_vectorized = True\n"
            "    def vector_apply(self, round_index, ops, rng):\n"
            "        return None\n"
        )
        assert lint_one("VEC001", {"src/repro/failures/x.py": src}) == []

    def test_inherited_raising_stub_does_not_satisfy(self):
        src = _CHURN_CONTRACT_ROOT + (
            "\n\nclass Base(ChurnModel):\n"
            "    def vector_apply(self, round_index, ops, rng):\n"
            "        raise NotImplementedError\n"
            "\n\nclass Bursty(Base):\n"
            "    supports_vectorized = True\n"
        )
        diags = lint_one("VEC001", {"src/repro/failures/x.py": src})
        assert len(diags) == 1
        assert "vector_apply" in diags[0].message

    def test_hook_via_intermediate_base_clean(self):
        src = _CHURN_CONTRACT_ROOT + (
            "\n\nclass SplicingBase(ChurnModel):\n"
            "    def vector_apply(self, round_index, ops, rng):\n"
            "        return ops\n"
            "\n\nclass Bursty(SplicingBase):\n"
            "    supports_vectorized = True\n"
        )
        assert lint_one("VEC001", {"src/repro/failures/x.py": src}) == []

    def test_contract_root_itself_clean(self):
        assert (
            lint_one("VEC001", {"src/repro/failures/churn.py": _CHURN_CONTRACT_ROOT})
            == []
        )

    def test_protocol_contract_unaffected_by_churn_overlay(self):
        # A protocol subclass in the same codebase still owes the full
        # protocol triple; the churn overlay applies only to ChurnModel
        # descendants.
        src = _CONTRACT_ROOT + (
            "\n\nclass Fast(BroadcastProtocol):\n"
            "    supports_vectorized = True\n"
            "    def vector_apply(self, round_index, ops, rng):\n"
            "        return ops\n"
        )
        diags = lint_one("VEC001", {"src/repro/protocols/x.py": src})
        assert len(diags) == 1
        assert "vector_fanout" in diags[0].message

    def test_real_churn_models_pass_the_rule(self):
        sources = {}
        for path in (REPO_ROOT / "src" / "repro" / "failures").glob("*.py"):
            rel = str(path.relative_to(REPO_ROOT))
            sources[rel] = path.read_text(encoding="utf-8")
        assert lint_one("VEC001", sources) == []


# ---------------------------------------------------------------------------
# PKL001 — pickle-boundary
# ---------------------------------------------------------------------------


class TestPickleBoundary:
    def test_lambda_to_submit_flagged(self):
        src = "def run(executor):\n    return executor.submit(lambda: 1)\n"
        diags = lint_one("PKL001", {"src/repro/dist/x.py": src})
        assert [d.rule for d in diags] == ["PKL001"]
        assert "lambda" in diags[0].message

    def test_nested_function_flagged(self):
        src = (
            "def run(executor, point):\n"
            "    def work():\n"
            "        return point\n"
            "    return executor.submit(work)\n"
        )
        diags = lint_one("PKL001", {"src/repro/dist/x.py": src})
        assert len(diags) == 1
        assert "work" in diags[0].message

    def test_lock_primitive_flagged(self):
        src = (
            "import threading\n\n"
            "def run(executor, fn):\n"
            "    return executor.submit(fn, threading.Lock())\n"
        )
        diags = lint_one("PKL001", {"src/repro/dist/x.py": src})
        assert len(diags) == 1
        assert "threading.Lock" in diags[0].message

    def test_process_target_kwarg_flagged(self):
        src = (
            "from multiprocessing import Process\n\n"
            "def run():\n"
            "    return Process(target=lambda: None)\n"
        )
        assert lint_one("PKL001", {"src/repro/dist/x.py": src})

    def test_pool_initializer_flagged(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n\n"
            "def run():\n"
            "    def init():\n"
            "        pass\n"
            "    return ProcessPoolExecutor(initializer=init)\n"
        )
        assert lint_one("PKL001", {"src/repro/dist/x.py": src})

    def test_lambda_inside_tuple_arg_flagged(self):
        src = (
            "def run(executor, fn):\n"
            "    return executor.submit(fn, (1, lambda: 2))\n"
        )
        assert lint_one("PKL001", {"src/repro/dist/x.py": src})

    def test_module_level_callable_clean(self):
        src = (
            "def work(point):\n"
            "    return point\n\n"
            "def run(executor, point):\n"
            "    return executor.submit(work, point)\n"
        )
        assert lint_one("PKL001", {"src/repro/dist/x.py": src}) == []

    def test_non_boundary_calls_ignored(self):
        src = "result = sorted([3, 1], key=lambda v: -v)\n"
        assert lint_one("PKL001", {"src/repro/dist/x.py": src}) == []


# ---------------------------------------------------------------------------
# DUR001 — durability-discipline
# ---------------------------------------------------------------------------


class TestDurabilityDiscipline:
    def test_open_for_write_flagged(self):
        src = "def save(path, data):\n    with open(path, 'w') as fh:\n        fh.write(data)\n"
        diags = lint_one("DUR001", {"src/repro/dist/x.py": src})
        assert [d.rule for d in diags] == ["DUR001"]

    def test_path_open_append_flagged(self):
        src = "def save(path):\n    return path.open('ab')\n"
        assert lint_one("DUR001", {"src/repro/dist/x.py": src})

    def test_write_text_flagged(self):
        src = "def save(path, data):\n    path.write_text(data)\n"
        assert lint_one("DUR001", {"src/repro/dist/x.py": src})

    def test_os_replace_flagged(self):
        src = "import os\n\ndef swap(a, b):\n    os.replace(a, b)\n"
        diags = lint_one("DUR001", {"src/repro/dist/x.py": src})
        assert len(diags) == 1
        assert "os.replace" in diags[0].message

    def test_reads_clean(self):
        src = (
            "def load(path):\n"
            "    with open(path) as fh:\n"
            "        head = fh.read()\n"
            "    return head + path.read_text() + path.open('rb').read()\n"
        )
        assert lint_one("DUR001", {"src/repro/dist/x.py": src}) == []

    def test_durability_module_is_exempt(self):
        src = "def atomic(path, data):\n    open(path, 'w').write(data)\n"
        assert lint_one("DUR001", {"src/repro/dist/durability.py": src}) == []

    def test_only_dist_subsystem_patrolled(self):
        src = "def save(path, data):\n    path.write_text(data)\n"
        assert lint_one("DUR001", {"src/repro/core/x.py": src}) == []


# ---------------------------------------------------------------------------
# EXC001 — exception-hygiene
# ---------------------------------------------------------------------------


class TestExceptionHygiene:
    def test_bare_except_flagged_in_package(self):
        src = "try:\n    step()\nexcept:\n    pass\n"
        diags = lint_one("EXC001", {"src/repro/core/x.py": src})
        assert [d.rule for d in diags] == ["EXC001"]
        assert "bare except" in diags[0].message

    def test_swallowed_exception_flagged_in_dist(self):
        src = "try:\n    step()\nexcept Exception:\n    pass\n"
        diags = lint_one("EXC001", {"src/repro/dist/x.py": src})
        assert len(diags) == 1
        assert "swallows" in diags[0].message

    def test_swallowed_exception_tolerated_outside_dist(self):
        src = "try:\n    step()\nexcept Exception:\n    pass\n"
        assert lint_one("EXC001", {"src/repro/core/x.py": src}) == []

    def test_handled_broad_exception_clean_in_dist(self):
        src = (
            "try:\n"
            "    step()\n"
            "except Exception as error:\n"
            "    record_failure(error)\n"
        )
        assert lint_one("EXC001", {"src/repro/dist/x.py": src}) == []

    def test_typed_swallow_clean_in_dist(self):
        src = "try:\n    step()\nexcept ValueError:\n    pass\n"
        assert lint_one("EXC001", {"src/repro/dist/x.py": src}) == []

    def test_broad_tuple_flagged_in_dist(self):
        src = "try:\n    step()\nexcept (OSError, Exception):\n    continue_ = 1\n"
        # body is an assignment, not a swallow: clean
        assert lint_one("EXC001", {"src/repro/dist/x.py": src}) == []
        src_swallow = (
            "for _ in range(2):\n"
            "    try:\n"
            "        step()\n"
            "    except (OSError, Exception):\n"
            "        continue\n"
        )
        assert lint_one("EXC001", {"src/repro/dist/x.py": src_swallow})


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_same_line_disable_masks(self):
        src = "seed = hash('x')  # lint: disable=SEED001 -- fixture\n"
        report = lint_all({"src/repro/x.py": src})
        assert report.diagnostics == []
        assert report.suppressed == 1

    def test_own_line_disable_masks_next_code_line(self):
        src = (
            "# lint: disable=SEED001 -- provenance stamp, never feeds a seed\n"
            "# (continues over a second comment line)\n"
            "seed = hash('x')\n"
        )
        report = lint_all({"src/repro/x.py": src})
        assert report.diagnostics == []
        assert report.suppressed == 1

    def test_wrong_rule_id_does_not_mask(self):
        src = "seed = hash('x')  # lint: disable=RNG001 -- wrong id\n"
        report = lint_all({"src/repro/x.py": src})
        assert [d.rule for d in report.diagnostics] == ["SEED001"]
        assert report.suppressed == 0

    def test_multiple_ids_and_all_wildcard(self):
        multi = "import random; seed = hash('x')  # lint: disable=RNG001,SEED001\n"
        report = lint_all({"src/repro/x.py": multi})
        assert report.diagnostics == []
        assert report.suppressed == 2

        wildcard = "import random; seed = hash('x')  # lint: disable=all\n"
        report = lint_all({"src/repro/x.py": wildcard})
        assert report.diagnostics == []
        assert report.suppressed == 2

    def test_directive_inside_string_is_not_a_suppression(self):
        src = "note = '# lint: disable=SEED001'\nseed = hash('x')\n"
        report = lint_all({"src/repro/x.py": src})
        assert [d.rule for d in report.diagnostics] == ["SEED001"]


# ---------------------------------------------------------------------------
# Syntax errors
# ---------------------------------------------------------------------------


class TestSyntaxErrors:
    def test_unparseable_file_reports_syn000(self):
        report = lint_all({"src/repro/x.py": "def broken(:\n"})
        assert len(report.diagnostics) == 1
        diag = report.diagnostics[0]
        assert diag.rule == SYNTAX_RULE_ID
        assert not report.clean

    def test_other_files_still_checked(self):
        report = lint_all(
            {
                "src/repro/broken.py": "def broken(:\n",
                "src/repro/bad_seed.py": "seed = hash('x')\n",
            }
        )
        assert {d.rule for d in report.diagnostics} == {SYNTAX_RULE_ID, "SEED001"}
        assert report.files_checked == 2


# ---------------------------------------------------------------------------
# Report formats
# ---------------------------------------------------------------------------


class TestReportFormats:
    def test_text_format_is_file_line_col_rule(self):
        report = lint_all({"src/repro/x.py": "seed = hash('x')\n"})
        first_line = render_text(report).splitlines()[0]
        assert first_line.startswith("src/repro/x.py:1:8: SEED001 ")
        assert "[hint: " in first_line

    def test_json_roundtrip(self):
        report = lint_all(
            {"src/repro/x.py": "import random\nseed = hash('x')\n"}
        )
        payload = json.loads(render_json(report))
        assert payload["schema_version"] == LINT_SCHEMA_VERSION
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"RNG001": 1, "SEED001": 1}
        for entry in payload["diagnostics"]:
            assert set(entry) == {"path", "line", "col", "rule", "message", "hint"}
        parsed = parse_report(render_json(report))
        assert parsed.diagnostics == report.diagnostics

    def test_parse_report_rejects_unknown_schema(self):
        bad = json.dumps({"schema_version": 999, "diagnostics": []})
        with pytest.raises(ValueError):
            parse_report(bad)

    def test_diagnostics_sorted_deterministically(self):
        report = lint_all(
            {
                "src/repro/b.py": "seed = hash('x')\n",
                "src/repro/a.py": "import random\nseed = hash('y')\n",
            }
        )
        keys = [(d.path, d.line, d.col, d.rule) for d in report.diagnostics]
        assert keys == sorted(keys)


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


class TestBaselines:
    def test_baseline_masks_known_findings(self, tmp_path):
        sources = {"src/repro/x.py": "seed = hash('x')\n"}
        report = lint_all(sources)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(report, baseline_file)

        rerun = apply_baseline(lint_all(sources), load_baseline(baseline_file))
        assert rerun.clean
        assert rerun.baselined == 1

    def test_new_violation_survives_baseline(self, tmp_path):
        old = lint_all({"src/repro/x.py": "seed = hash('x')\n"})
        baseline_file = tmp_path / "baseline.json"
        write_baseline(old, baseline_file)

        grown = lint_all(
            {"src/repro/x.py": "seed = hash('x')\nother = hash('y')\n"}
        )
        diffed = apply_baseline(grown, load_baseline(baseline_file))
        assert len(diffed.diagnostics) == 1
        assert diffed.baselined == 1

    def test_line_drift_is_tolerated(self, tmp_path):
        old = lint_all({"src/repro/x.py": "seed = hash('x')\n"})
        baseline_file = tmp_path / "baseline.json"
        write_baseline(old, baseline_file)

        # Same violation, pushed two lines down by an unrelated edit.
        moved = lint_all(
            {"src/repro/x.py": "import math\n\nseed = hash('x')\n"}
        )
        diffed = apply_baseline(moved, load_baseline(baseline_file))
        assert diffed.clean
        assert diffed.baselined == 1

    def test_fixed_findings_do_not_credit_other_files(self, tmp_path):
        old = lint_all({"src/repro/x.py": "seed = hash('x')\n"})
        baseline_file = tmp_path / "baseline.json"
        write_baseline(old, baseline_file)

        other = lint_all({"src/repro/y.py": "seed = hash('x')\n"})
        diffed = apply_baseline(other, load_baseline(baseline_file))
        assert len(diffed.diagnostics) == 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_cli(*argv, cwd=None):
    env_root = str(REPO_ROOT / "src")
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = env_root + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=cwd or REPO_ROOT,
        env=env,
    )


class TestCli:
    @pytest.fixture()
    def violation_tree(self, tmp_path):
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("seed = hash('label')\n")
        return tmp_path

    def test_clean_run_exits_zero(self, tmp_path):
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "ok.py").write_text("VALUE = 1\n")
        result = run_cli("--root", str(tmp_path))
        assert result.returncode == 0, result.stderr
        assert "clean" in result.stdout

    def test_findings_exit_one_with_parseable_location(self, violation_tree):
        result = run_cli("--root", str(violation_tree))
        assert result.returncode == 1
        assert "src/repro/bad.py:1:8: SEED001" in result.stdout

    def test_json_format(self, violation_tree):
        result = run_cli("--root", str(violation_tree), "--format", "json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["schema_version"] == LINT_SCHEMA_VERSION
        assert payload["counts"] == {"SEED001": 1}

    def test_rules_selection(self, violation_tree):
        result = run_cli("--root", str(violation_tree), "--rules", "RNG001")
        assert result.returncode == 0

    def test_unknown_rule_exits_two(self, violation_tree):
        result = run_cli("--root", str(violation_tree), "--rules", "NOPE999")
        assert result.returncode == 2
        assert "known rules" in result.stderr

    def test_missing_path_exits_two(self, tmp_path):
        result = run_cli("--root", str(tmp_path), "no/such/dir")
        assert result.returncode == 2

    def test_list_rules(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for rule in all_rules():
            assert rule.id in result.stdout

    def test_baseline_flow(self, violation_tree, tmp_path):
        baseline = tmp_path / "lint-baseline.json"
        written = run_cli(
            "--root", str(violation_tree), "--write-baseline", str(baseline)
        )
        assert written.returncode == 0
        assert baseline.is_file()

        gated = run_cli("--root", str(violation_tree), "--baseline", str(baseline))
        assert gated.returncode == 0, gated.stdout + gated.stderr
        assert "baselined" in gated.stdout

        missing = run_cli(
            "--root", str(violation_tree), "--baseline", str(tmp_path / "nope.json")
        )
        assert missing.returncode == 2


# ---------------------------------------------------------------------------
# Registry / selection
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_at_least_six_rules_registered(self):
        rules = all_rules()
        assert len(rules) >= 6
        ids = [rule.id for rule in rules]
        assert len(ids) == len(set(ids))
        for expected in (
            "RNG001",
            "SEED001",
            "VEC001",
            "PKL001",
            "DUR001",
            "EXC001",
        ):
            assert expected in ids

    def test_rules_by_id_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            rules_by_id(["NOPE999"])

    def test_every_rule_has_docsable_metadata(self):
        for rule in all_rules():
            assert rule.id and rule.slug and rule.summary and rule.hint
            assert rule.zones


# ---------------------------------------------------------------------------
# Meta: the repo itself and its documentation
# ---------------------------------------------------------------------------


class TestSelfApplication:
    def test_repo_lints_clean(self):
        # The CI gate in .github/workflows/ci.yml runs exactly this.
        linter = Linter(root=REPO_ROOT)
        report = linter.lint_paths([REPO_ROOT / part for part in DEFAULT_TARGETS])
        assert report.clean, render_text(report)

    def test_docs_rule_catalogue_matches_registry(self):
        # docs/API.md §11 must document exactly the registered rules: a new
        # rule without docs — or docs for a removed rule — fails here.
        import re

        api = (REPO_ROOT / "docs" / "API.md").read_text(encoding="utf-8")
        documented = set(re.findall(r"^#{2,4}\s+.*?\b([A-Z]{2,5}\d{3})\b", api, re.M))
        documented.discard(SYNTAX_RULE_ID)  # pseudo-rule, documented separately
        registered = {rule.id for rule in all_rules()}
        assert documented == registered
