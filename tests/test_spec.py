"""Tests for the declarative scenario-spec API and the unified registries."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments.exp_round_complexity import scenario as e1_scenario
from repro.experiments.runner import ExperimentRunner
from repro.experiments.workloads import SweepSizes
from repro.failures.registry import FAILURE_MODELS, build_failure_model
from repro.failures.message_loss import IndependentLoss, ReliableDelivery
from repro.graphs.registry import GRAPH_FAMILIES, build_graph, graph_needs_rng
from repro.core.rng import RandomSource
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.push import PushProtocol
from repro.protocols.push_pull import PushPullProtocol
from repro.protocols.registry import PROTOCOLS
from repro.spec import (
    FailureSpec,
    GraphSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    load_spec,
    run_spec,
    save_spec,
)


def small_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="test-scenario",
        graph=GraphSpec(family="connected-random-regular", params={"n": 64, "d": 6}),
        protocol=ProtocolSpec(name="push"),
        repetitions=2,
        master_seed=7,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


SPEC_VARIANTS = {
    "minimal": lambda: small_spec(),
    "protocol-params": lambda: small_spec(
        protocol=ProtocolSpec(name="algorithm1", params={"alpha": 1.5, "fanout": 3})
    ),
    "failure": lambda: small_spec(
        failure=FailureSpec(
            model="independent-loss",
            params={"transmission_loss_probability": 0.1},
        )
    ),
    "estimate-override": lambda: small_spec(
        protocol=ProtocolSpec(name="algorithm1", n_estimate=128)
    ),
    "config-overrides": lambda: small_spec(
        config={"stop_when_informed": False, "max_rounds": 50}
    ),
    "sweep": lambda: small_spec(
        sweep=SweepSpec(
            axes=(
                SweepAxis(path="protocol.name", values=("push", "pull"), key="protocol"),
                SweepAxis(path="graph.params.n", values=(64, 128)),
            )
        ),
        label="t-{protocol}",
    ),
    "complete-graph": lambda: small_spec(
        graph=GraphSpec(family="complete", params={"n": 32})
    ),
    "engine-batch": lambda: small_spec(engine="scalar", batch=False),
}


class TestRoundTrip:
    @pytest.mark.parametrize("variant", sorted(SPEC_VARIANTS))
    def test_dict_round_trip_is_identity(self, variant):
        spec = SPEC_VARIANTS[variant]()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("variant", sorted(SPEC_VARIANTS))
    def test_json_round_trip_is_identity(self, variant):
        spec = SPEC_VARIANTS[variant]()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_to_dict_is_json_serialisable_and_stable(self):
        spec = SPEC_VARIANTS["sweep"]()
        first = json.dumps(spec.to_dict())
        second = json.dumps(ScenarioSpec.from_dict(spec.to_dict()).to_dict())
        assert first == second

    def test_file_round_trip(self, tmp_path):
        spec = SPEC_VARIANTS["failure"]()
        path = save_spec(spec, tmp_path / "spec.json")
        assert load_spec(path) == spec

    def test_sub_spec_dicts_are_copies(self):
        spec = small_spec()
        data = spec.to_dict()
        data["graph"]["params"]["n"] = 999
        assert spec.graph.params["n"] == 64


class TestValidation:
    def test_unknown_protocol_named(self):
        with pytest.raises(ConfigurationError, match="telepathy"):
            ProtocolSpec(name="telepathy")

    def test_unknown_protocol_kwarg_named(self):
        with pytest.raises(ConfigurationError, match="fanout_typo"):
            ProtocolSpec(name="push", params={"fanout_typo": 2})

    def test_reserved_protocol_kwarg_rejected(self):
        with pytest.raises(ConfigurationError, match="n_estimate"):
            ProtocolSpec(name="push", params={"n_estimate": 64})

    def test_preset_protocol_validates_kwargs_eagerly(self):
        # push-pull-4 fixes fanout at 4; a fanout param must fail up front,
        # not mid-run with a raw TypeError.
        with pytest.raises(ConfigurationError, match="fanout"):
            ProtocolSpec(name="push-pull-4", params={"fanout": 2})
        with pytest.raises(ConfigurationError, match="fnout_typo"):
            ProtocolSpec(name="push-pull-4", params={"fnout_typo": 2})
        spec = ProtocolSpec(name="push-pull-4", params={"extra_loglog_rounds": 2.0})
        assert spec.build(64).name == "push-pull-4"

    def test_unknown_graph_family_named(self):
        with pytest.raises(ConfigurationError, match="moebius"):
            GraphSpec(family="moebius", params={"n": 4})

    def test_unknown_graph_kwarg_named(self):
        with pytest.raises(ConfigurationError, match="degre"):
            GraphSpec(family="complete", params={"n": 8, "degre": 3})

    def test_missing_required_graph_kwarg_named(self):
        with pytest.raises(ConfigurationError, match="'d'"):
            GraphSpec(family="random-regular", params={"n": 8})

    def test_unknown_failure_model_named(self):
        with pytest.raises(ConfigurationError, match="cosmic-rays"):
            FailureSpec(model="cosmic-rays")

    def test_unknown_failure_kwarg_named(self):
        with pytest.raises(ConfigurationError, match="strength"):
            FailureSpec(model="independent-loss", params={"strength": 0.5})

    def test_bad_sweep_path_named(self):
        with pytest.raises(ConfigurationError, match=r"protocol\.colour"):
            SweepAxis(path="protocol.colour", values=(1,))

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            SweepAxis(path="graph.params.n", values=())

    def test_duplicate_axis_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            SweepSpec(
                axes=(
                    SweepAxis(path="graph.params.n", values=(8,)),
                    SweepAxis(path="protocol.params.fanout", values=(1,), key="n"),
                )
            )

    def test_engine_override_in_config_rejected(self):
        with pytest.raises(ConfigurationError, match="engine"):
            small_spec(config={"engine": "scalar"})

    def test_unknown_config_key_named(self):
        with pytest.raises(ConfigurationError, match="stop_when_infrmed"):
            small_spec(config={"stop_when_infrmed": False})

    def test_unknown_top_level_field_named(self):
        data = small_spec().to_dict()
        data["colour"] = "blue"
        with pytest.raises(ConfigurationError, match="colour"):
            ScenarioSpec.from_dict(data)

    def test_future_schema_rejected(self):
        data = small_spec().to_dict()
        data["schema"] = "repro.scenario/99"
        with pytest.raises(ConfigurationError, match="repro.scenario/99"):
            ScenarioSpec.from_dict(data)

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            ScenarioSpec.from_json("{not json")

    def test_invalid_point_value_fails_at_resolution(self):
        spec = small_spec(
            sweep=SweepSpec(
                axes=(SweepAxis(path="protocol.name", values=("push", "warp")),)
            )
        )
        with pytest.raises(ConfigurationError, match="warp"):
            list(spec.expand())

    def test_label_with_unknown_key_named(self):
        spec = small_spec(label="x-{missing_key}")
        with pytest.raises(ConfigurationError, match="missing_key"):
            spec.run_label()


class TestSweepExpansion:
    def test_row_major_first_axis_outermost(self):
        spec = SPEC_VARIANTS["sweep"]()
        points = [values for values, _ in spec.expand()]
        assert points == [
            {"protocol": "push", "n": 64},
            {"protocol": "push", "n": 128},
            {"protocol": "pull", "n": 64},
            {"protocol": "pull", "n": 128},
        ]

    def test_resolved_points_have_no_sweep(self):
        spec = SPEC_VARIANTS["sweep"]()
        for _, point in spec.expand():
            assert point.sweep is None

    def test_sweepless_spec_is_one_point(self):
        spec = small_spec()
        expanded = list(spec.expand())
        assert len(expanded) == 1
        assert expanded[0] == ({}, spec)


class TestRegistries:
    def test_all_graph_families_build(self):
        rng_params = {
            "random-regular": {"n": 16, "d": 4},
            "connected-random-regular": {"n": 16, "d": 4},
            "pairing-multigraph": {"n": 16, "d": 4},
            "complete": {"n": 8},
            "gnp": {"n": 16, "p": 0.3},
            "hypercube": {"dimension": 3},
            "ring": {"n": 8},
            "regular-product-clique": {"n": 8, "d": 3, "clique_size": 3},
        }
        assert set(rng_params) == set(GRAPH_FAMILIES.names())
        for family, params in rng_params.items():
            rng = RandomSource(seed=3) if graph_needs_rng(family) else None
            graph = build_graph(family, rng=rng, **params)
            assert graph.node_count >= 4

    def test_randomised_family_requires_rng(self):
        with pytest.raises(ConfigurationError, match="rng"):
            build_graph("gnp", n=8, p=0.5)

    def test_failure_models_build(self):
        assert isinstance(build_failure_model("reliable"), ReliableDelivery)
        model = build_failure_model(
            "independent-loss", transmission_loss_probability=0.2
        )
        assert isinstance(model, IndependentLoss)
        assert model.transmission_loss_probability == 0.2

    def test_registry_entries_document_params(self):
        for registry in (PROTOCOLS, GRAPH_FAMILIES, FAILURE_MODELS):
            described = registry.describe()
            assert described
            for name, (summary, _params) in described.items():
                assert isinstance(name, str) and summary

    def test_reliable_failure_spec_builds_to_none(self):
        assert FailureSpec().build() is None
        assert isinstance(
            FailureSpec(model="independent-loss").build(), IndependentLoss
        )


class TestSpecDrivenExecution:
    def test_e1_spec_is_bit_identical_to_hand_wired(self):
        sizes, degree, reps, seed = [64, 128], 6, 2, 2008
        runner = ExperimentRunner(master_seed=seed, repetitions=reps)
        hand = []
        for name, factory in {
            "push": lambda n: PushProtocol(n_estimate=n),
            "push-pull": lambda n: PushPullProtocol(n_estimate=n),
            "algorithm1": lambda n: Algorithm1(n_estimate=n),
        }.items():
            for n in sizes:
                hand.extend(runner.broadcast(n, degree, factory, label=f"e1-{name}"))

        spec = e1_scenario(
            master_seed=seed,
            degree=degree,
            sizes=SweepSizes(sizes=sizes, repetitions=reps),
        )
        via_spec = run_spec(spec).results()

        assert len(hand) == len(via_spec)
        for ours, theirs in zip(hand, via_spec):
            assert ours.success == theirs.success
            assert ours.rounds_executed == theirs.rounds_executed
            assert ours.rounds_to_completion == theirs.rounds_to_completion
            assert ours.total_push_transmissions == theirs.total_push_transmissions
            assert ours.total_pull_transmissions == theirs.total_pull_transmissions
            assert ours.total_channels_opened == theirs.total_channels_opened
            assert ours.history == theirs.history

    def test_results_record_the_resolved_point_spec(self):
        spec = SPEC_VARIANTS["sweep"]()
        run = run_spec(spec)
        for point in run.points:
            for result in point.results:
                recorded = result.metadata["spec"]
                assert recorded == point.spec.to_dict()
                assert recorded["sweep"] is None
        names = [p.spec.protocol.name for p in run.points]
        assert names == ["push", "push", "pull", "pull"]

    def test_rerunning_a_recorded_point_spec_reproduces_the_result(self):
        run = run_spec(SPEC_VARIANTS["failure"]())
        original = run.points[0].results[0]
        replay_spec = ScenarioSpec.from_dict(original.metadata["spec"])
        replay = run_spec(replay_spec).results()[0]
        assert replay.total_transmissions == original.total_transmissions
        assert replay.rounds_executed == original.rounds_executed
        assert replay.history == original.history

    def test_recorded_point_spec_replays_when_label_uses_axis_keys(self):
        # Regression: the resolved point spec must bake the *formatted* label,
        # not the raw template — "{loss}" only exists while the sweep axis
        # (key "loss") provides it, and the label feeds the seed derivation.
        spec = small_spec(
            failure=FailureSpec(
                model="independent-loss",
                params={"transmission_loss_probability": 0.0},
            ),
            sweep=SweepSpec(
                axes=(
                    SweepAxis(
                        path="failure.params.transmission_loss_probability",
                        values=(0.0, 0.2),
                        key="loss",
                    ),
                )
            ),
            label="lbl-{protocol}-{loss}",
        )
        run = run_spec(spec)
        for point in run.points:
            assert point.spec.label == point.label  # baked, not the template
            replay_spec = ScenarioSpec.from_dict(point.results[0].metadata["spec"])
            replay = run_spec(replay_spec).results()[0]
            assert replay.history == point.results[0].history
            assert replay.total_transmissions == point.results[0].total_transmissions

    def test_graph_instance_axis_yields_independent_graphs(self):
        # Regression: the regular-graph fast path must forward the spec's
        # instance index; distinct instances are independent graph draws.
        spec = small_spec(
            sweep=SweepSpec(axes=(SweepAxis(path="graph.instance", values=(0, 1)),))
        )
        run = run_spec(spec)
        first, second = (point.results[0] for point in run.points)
        assert first.history != second.history

    def test_non_regular_families_run(self):
        run = run_spec(SPEC_VARIANTS["complete-graph"]())
        assert run.points[0].aggregate.success_rate == 1.0

    def test_engine_and_batch_knobs_respected(self):
        run = run_spec(SPEC_VARIANTS["engine-batch"]())
        result = run.points[0].results[0]
        assert result.metadata["engine"] == "scalar"
        assert "batch_size" not in result.metadata

    def test_config_overrides_apply(self):
        run = run_spec(SPEC_VARIANTS["config-overrides"]())
        result = run.points[0].results[0]
        # stop_when_informed=False runs the protocol's full schedule.
        assert result.rounds_executed >= (result.rounds_to_completion or 0)

    def test_runner_spec_mismatch_rejected(self):
        runner = ExperimentRunner(master_seed=1)
        with pytest.raises(ConfigurationError, match="master_seed"):
            runner.run_scenario(small_spec(master_seed=2))

    def test_to_table_carries_axis_columns_and_spec_metadata(self):
        spec = SPEC_VARIANTS["sweep"]()
        table = run_spec(spec).to_table()
        assert table.columns[:2] == ["protocol", "n"]
        assert len(table.rows) == 4
        assert table.metadata["spec"] == spec.to_dict()

    def test_bundled_example_specs_load_and_run(self):
        from pathlib import Path

        specs_dir = Path(__file__).resolve().parent.parent / "examples" / "specs"
        spec = load_spec(specs_dir / "e1_round_complexity.json")
        assert spec == e1_scenario(quick=True)
        loss_spec = load_spec(specs_dir / "push_loss_sweep.json")
        assert loss_spec.sweep is not None and loss_spec.sweep.size == 6
