"""Unit tests for Algorithm 1, Algorithm 2, and the sequential variant."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.node import NodeState, StateTable
from repro.core.rng import RandomSource
from repro.protocols.algorithm1 import Algorithm1
from repro.protocols.algorithm2 import Algorithm2
from repro.protocols.sequential import SequentialAlgorithm1


def state_informed_at(round_index: int, node_id: int = 0) -> NodeState:
    state = NodeState(node_id=node_id)
    state.informed = True
    state.informed_round = round_index
    return state


class TestAlgorithm1Decisions:
    def setup_method(self):
        self.protocol = Algorithm1(n_estimate=1024, alpha=1.0)
        self.schedule = self.protocol.schedule

    def test_horizon_matches_schedule(self):
        assert self.protocol.horizon() == self.schedule.horizon

    def test_phase1_only_newly_informed_push(self):
        round_index = 3
        assert self.schedule.phase_of(round_index) == 1
        fresh = state_informed_at(round_index - 1)
        stale = state_informed_at(round_index - 2)
        uninformed = NodeState(node_id=9)
        assert self.protocol.wants_push(fresh, round_index)
        assert not self.protocol.wants_push(stale, round_index)
        assert not self.protocol.wants_push(uninformed, round_index)

    def test_source_pushes_in_round_one(self):
        source = state_informed_at(0)
        assert self.protocol.wants_push(source, 1)

    def test_phase2_every_informed_node_pushes(self):
        round_index = self.schedule.phase1_end + 1
        assert self.schedule.phase_of(round_index) == 2
        assert self.protocol.wants_push(state_informed_at(0), round_index)
        assert not self.protocol.wants_pull(state_informed_at(0), round_index)

    def test_phase3_is_pull_only(self):
        round_index = self.schedule.phase2_end + 1
        assert self.schedule.phase_of(round_index) == 3
        assert self.protocol.pull_round(round_index)
        assert not self.protocol.push_round(round_index)
        assert self.protocol.wants_pull(state_informed_at(0), round_index)
        assert not self.protocol.wants_push(state_informed_at(0), round_index)

    def test_phase4_only_active_nodes_push(self):
        round_index = self.schedule.phase3_end + 1
        assert self.schedule.phase_of(round_index) == 4
        active = state_informed_at(self.schedule.phase3_end)
        active.active = True
        dormant = state_informed_at(1)
        assert self.protocol.wants_push(active, round_index)
        assert not self.protocol.wants_push(dormant, round_index)

    def test_on_round_committed_activates_late_joiners(self):
        states = StateTable(n=4, source=0)
        states[2].deliver(self.schedule.phase3_end)
        states.commit_round()
        self.protocol.on_round_committed(self.schedule.phase3_end, states, {2})
        assert states[2].active
        assert not states[1].active

    def test_on_round_committed_ignores_early_phases(self):
        states = StateTable(n=4, source=0)
        states[2].deliver(1)
        states.commit_round()
        self.protocol.on_round_committed(1, states, {2})
        assert not states[2].active

    def test_fanout_and_naming(self):
        assert self.protocol.fanout(NodeState(node_id=0), 1) == 4
        assert Algorithm1(n_estimate=256, fanout=3).name == "algorithm1-f3"
        assert Algorithm1(n_estimate=256).name == "algorithm1"

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Algorithm1(n_estimate=1)
        with pytest.raises(ConfigurationError):
            Algorithm1(n_estimate=256, fanout=0)

    def test_describe_reports_phase_lengths(self):
        description = self.protocol.describe()
        assert set(description["phase_lengths"]) == {"phase1", "phase2", "phase3", "phase4"}
        assert description["alpha"] == 1.0


class TestAlgorithm2Decisions:
    def setup_method(self):
        self.protocol = Algorithm2(n_estimate=1024, alpha=1.0)
        self.schedule = self.protocol.schedule

    def test_phase1_and_2_match_algorithm1_semantics(self):
        assert self.protocol.wants_push(state_informed_at(0), 1)
        phase2_round = self.schedule.phase1_end + 1
        assert self.protocol.wants_push(state_informed_at(0), phase2_round)

    def test_phase3_is_a_multi_round_pull_phase(self):
        pull_rounds = [
            t
            for t in range(1, self.schedule.horizon + 1)
            if self.protocol.pull_round(t)
        ]
        assert len(pull_rounds) >= 2
        for t in pull_rounds:
            assert self.protocol.wants_pull(state_informed_at(0), t)
            assert not self.protocol.wants_push(state_informed_at(0), t)

    def test_no_phase4(self):
        assert self.schedule.phase3_end == self.schedule.phase4_end


class TestSequentialAlgorithm1:
    def setup_method(self):
        self.protocol = SequentialAlgorithm1(n_estimate=1024, alpha=1.0)

    def test_horizon_is_stretched(self):
        simultaneous = Algorithm1(n_estimate=1024, alpha=1.0)
        assert self.protocol.horizon() == 4 * simultaneous.horizon()

    def test_fanout_is_one(self):
        assert self.protocol.fanout(NodeState(node_id=0), 1) == 1

    def test_memory_window_defaults_to_three(self):
        assert self.protocol.memory_window == 3
        assert self.protocol.stretch == 4

    def test_select_call_targets_avoids_recent_partners(self):
        state = state_informed_at(0)
        rng = RandomSource(seed=1)
        neighbours = [1, 2, 3, 4, 5, 6, 7, 8]
        picks = [
            self.protocol.select_call_targets(state, neighbours, t, rng)[0]
            for t in range(1, 5)
        ]
        # Four consecutive picks must be pairwise distinct thanks to the memory.
        assert len(set(picks)) == 4

    def test_memory_falls_back_when_all_neighbours_remembered(self):
        state = state_informed_at(0)
        state.memory = [1, 2]
        rng = RandomSource(seed=1)
        picks = self.protocol.select_call_targets(state, [1, 2], 1, rng)
        assert picks and picks[0] in {1, 2}

    def test_source_pushes_during_first_emulated_block(self):
        source = state_informed_at(0)
        for round_index in range(1, 5):
            assert self.protocol.wants_push(source, round_index)
        assert not self.protocol.wants_push(source, 5)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SequentialAlgorithm1(n_estimate=1)
        with pytest.raises(ConfigurationError):
            SequentialAlgorithm1(n_estimate=256, memory_window=-1)
        with pytest.raises(ConfigurationError):
            SequentialAlgorithm1(n_estimate=256, stretch=0)
