"""Unit tests for the P2P layer: peers, overlay, gossip rules, replicated DB."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource
from repro.graphs.properties import is_connected
from repro.p2p.gossip_rules import (
    Algorithm1Rule,
    Algorithm2Rule,
    PushPullRule,
    PushRule,
    build_gossip_rule,
)
from repro.p2p.overlay import Overlay
from repro.p2p.peer import Peer, Update
from repro.p2p.replicated_db import ReplicatedDatabase, UpdateWorkload


class TestUpdateAndPeer:
    def test_update_identity_and_age(self):
        update = Update(key="k", version=3, origin=7, created_round=5)
        assert update.update_id == ("k", 3, 7)
        assert update.age(9) == 4

    def test_last_writer_wins(self):
        old = Update(key="k", version=1, origin=2, created_round=0)
        new = Update(key="k", version=2, origin=1, created_round=1)
        tie_higher_origin = Update(key="k", version=1, origin=5, created_round=0)
        assert new.supersedes(old)
        assert not old.supersedes(new)
        assert tie_higher_origin.supersedes(old)
        assert old.supersedes(None)
        other_key = Update(key="j", version=9, origin=9, created_round=0)
        assert not other_key.supersedes(old)

    def test_peer_apply_tracks_known_updates(self):
        peer = Peer(peer_id=1)
        update = Update(key="k", version=1, origin=0, created_round=0, value="a")
        assert peer.apply(update) is True
        assert peer.apply(update) is False
        assert peer.knows(update)
        assert peer.value_of("k") == "a"
        assert peer.value_of("missing") is None

    def test_peer_store_resolves_conflicts(self):
        peer = Peer(peer_id=1)
        peer.apply(Update(key="k", version=2, origin=0, created_round=0, value="new"))
        peer.apply(Update(key="k", version=1, origin=0, created_round=0, value="old"))
        assert peer.value_of("k") == "new"
        assert len(peer.known_updates) == 2

    def test_digest_summarises_store(self):
        peer = Peer(peer_id=1)
        peer.apply(Update(key="k", version=1, origin=0, created_round=0, value="x"))
        assert peer.digest() == {"k": (1, 0, "x")}


class TestOverlay:
    def test_initial_overlay_is_regular(self):
        overlay = Overlay(n=64, degree=6, rng=RandomSource(seed=1))
        degrees = overlay.graph.degrees()
        assert all(degree == 6 for degree in degrees.values())
        assert overlay.size == 64

    def test_join_adds_a_connected_peer_without_changing_others(self):
        overlay = Overlay(n=64, degree=6, rng=RandomSource(seed=1))
        before = overlay.graph.degrees()
        joiner = overlay.join()
        assert overlay.size == 65
        assert overlay.graph.degree(joiner) >= 2
        for node, degree in overlay.graph.degrees().items():
            if node != joiner:
                assert degree == before[node]

    def test_leave_removes_peer_and_patches_neighbours(self):
        overlay = Overlay(n=64, degree=6, rng=RandomSource(seed=2))
        departed = overlay.leave()
        assert overlay.size == 63
        assert departed not in overlay.graph
        # Degrees stay close to the target (re-pairing may skip a few).
        assert overlay.degree_deficit() <= 6

    def test_leave_refuses_to_empty_overlay(self):
        # Keep removing peers: once the overlay shrinks to degree + 1 peers the
        # next departure must be refused.
        overlay = Overlay(n=12, degree=4, rng=RandomSource(seed=3))
        with pytest.raises(ConfigurationError):
            for _ in range(12):
                overlay.leave()
        assert overlay.size == overlay.degree + 1

    def test_leave_unknown_peer_rejected(self):
        overlay = Overlay(n=32, degree=4, rng=RandomSource(seed=3))
        with pytest.raises(ConfigurationError):
            overlay.leave(peer_id=9999)

    def test_random_swaps_preserve_degrees_and_connectivity_mostly(self):
        overlay = Overlay(n=64, degree=6, rng=RandomSource(seed=4))
        before = overlay.graph.degrees()
        performed = overlay.random_swaps(200)
        assert performed > 0
        assert overlay.graph.degrees() == before
        assert overlay.graph.is_simple()
        assert is_connected(overlay.graph)

    def test_random_swaps_rejects_negative(self):
        overlay = Overlay(n=32, degree=4, rng=RandomSource(seed=4))
        with pytest.raises(ConfigurationError):
            overlay.random_swaps(-1)

    def test_repair_restores_degree_after_churn(self):
        overlay = Overlay(n=64, degree=6, rng=RandomSource(seed=5))
        for _ in range(5):
            overlay.leave()
        deficit_before = overlay.degree_deficit()
        overlay.repair()
        assert overlay.degree_deficit() <= deficit_before

    def test_minimum_degree_enforced(self):
        with pytest.raises(ConfigurationError):
            Overlay(n=32, degree=2, rng=RandomSource(seed=6))


class TestGossipRules:
    def test_push_rule_age_cutoff(self):
        rule = PushRule(n_estimate=256, horizon_factor=1.0)
        assert rule.wants_push(1, 0)
        assert rule.wants_push(rule.horizon(), 0)
        assert not rule.wants_push(rule.horizon() + 1, 0)
        assert not rule.wants_pull(1, 0)

    def test_push_pull_rule_enables_both(self):
        rule = PushPullRule(n_estimate=256)
        assert rule.wants_push(2, 0) and rule.wants_pull(2, 0)

    def test_algorithm1_rule_phase1_pushes_once(self):
        rule = Algorithm1Rule(n_estimate=1024)
        # The originator (received_age 0) pushes at age 1 only.
        assert rule.wants_push(1, 0)
        assert not rule.wants_push(2, 0)
        # A peer that received the update at age 3 pushes at age 4.
        assert rule.wants_push(4, 3)
        assert not rule.wants_push(5, 3)

    def test_algorithm1_rule_phase2_everyone_pushes(self):
        rule = Algorithm1Rule(n_estimate=1024)
        phase2_age = rule.schedule.phase1_end + 1
        assert rule.wants_push(phase2_age, 0)

    def test_algorithm1_rule_phase3_pull_and_phase4_active(self):
        rule = Algorithm1Rule(n_estimate=1024)
        pull_age = rule.schedule.phase2_end + 1
        assert rule.wants_pull(pull_age, 0)
        phase4_age = rule.schedule.phase3_end + 1
        assert rule.wants_push(phase4_age, pull_age)
        assert not rule.wants_push(phase4_age, 1)

    def test_algorithm2_rule_pull_tail(self):
        rule = Algorithm2Rule(n_estimate=1024)
        pull_age = rule.schedule.phase2_end + 1
        assert rule.wants_pull(pull_age, 0)
        assert not rule.wants_push(pull_age, 0)

    def test_rules_expire_after_horizon(self):
        for rule in (PushRule(256), Algorithm1Rule(256)):
            assert rule.active(rule.horizon())
            assert not rule.active(rule.horizon() + 1)
            assert not rule.active(-1)

    def test_build_gossip_rule_factory(self):
        assert isinstance(build_gossip_rule("push", 256), PushRule)
        assert isinstance(build_gossip_rule("algorithm1", 256), Algorithm1Rule)
        with pytest.raises(ConfigurationError):
            build_gossip_rule("smoke-signals", 256)


class TestReplicatedDatabase:
    def _database(self, rule, seed=11, n=128, **kwargs):
        rng = RandomSource(seed=seed)
        overlay = Overlay(n=n, degree=6, rng=rng.spawn("overlay"))
        return ReplicatedDatabase(overlay, rule, rng.spawn("db"), **kwargs)

    def test_all_replicas_converge_without_churn(self):
        database = self._database(Algorithm1Rule(n_estimate=128))
        report = database.run(UpdateWorkload(updates_per_round=2, injection_rounds=3))
        assert report.updates_created == 6
        assert report.replication_rate == 1.0
        assert database.replicas_agree()
        assert report.mean_convergence_rounds > 0

    def test_transmissions_and_payload_are_accounted(self):
        database = self._database(PushRule(n_estimate=128))
        report = database.run(UpdateWorkload(updates_per_round=1, injection_rounds=2))
        assert report.total_transmissions > 0
        assert report.total_payload_bytes >= 64 * report.total_transmissions / 2
        assert report.total_channels_opened > 0
        assert report.transmissions_per_update_per_peer > 0

    def test_empty_workload_is_harmless(self):
        database = self._database(PushRule(n_estimate=128))
        report = database.run(UpdateWorkload(updates_per_round=0, injection_rounds=0))
        assert report.updates_created == 0
        assert report.replication_rate == 1.0
        assert report.total_transmissions == 0

    def test_churn_keeps_surviving_replicas_consistent_enough(self):
        database = self._database(
            Algorithm1Rule(n_estimate=128), join_rate=0.01, leave_rate=0.01
        )
        report = database.run(UpdateWorkload(updates_per_round=1, injection_rounds=4))
        assert report.replication_rate >= 0.5
        assert 0.0 <= report.final_divergence <= 1.0

    def test_divergence_curve_tracks_rounds(self):
        database = self._database(PushPullRule(n_estimate=128))
        report = database.run(UpdateWorkload(updates_per_round=1, injection_rounds=1))
        assert len(report.divergence_curve) == report.rounds_executed
        assert report.divergence_curve[-1] == report.final_divergence

    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            self._database(PushRule(n_estimate=128), join_rate=1.5)

    def test_workload_validation(self):
        with pytest.raises(ConfigurationError):
            UpdateWorkload(updates_per_round=-1)
        with pytest.raises(ConfigurationError):
            UpdateWorkload(keys=0)
        assert UpdateWorkload(updates_per_round=2, injection_rounds=3).total_updates == 6
