"""Edge-case coverage for the failure models.

Two boundary regions that the standard sweeps never visit:

* :class:`IndependentLoss` at its extremes ``p = 0.0`` (must be exactly the
  reliable-delivery run, engine-independently) and ``p = 1.0`` (no copy ever
  arrives: the informed set stays ``{source}`` forever and the broadcast
  fails), with scalar-vs-vectorized history parity at both ends;
* :class:`UniformChurn` on singleton and near-empty graphs, where the
  splice-based join and the protected source leave almost no room to act.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.node import StateTable
from repro.core.rng import RandomSource
from repro.failures.churn import UniformChurn
from repro.failures.message_loss import IndependentLoss, ReliableDelivery
from repro.graphs.base import Graph
from repro.spec import (
    FailureSpec,
    GraphSpec,
    ProtocolSpec,
    ScenarioSpec,
    run_spec,
)


def loss_spec(p: float, engine: str = "auto", protocol: str = "push") -> ScenarioSpec:
    return ScenarioSpec(
        name=f"loss-edge-{protocol}-{p}",
        graph=GraphSpec(family="connected-random-regular", params={"n": 64, "d": 6}),
        protocol=ProtocolSpec(name=protocol),
        failure=FailureSpec(
            model="independent-loss",
            params={"transmission_loss_probability": p},
        ),
        repetitions=3,
        master_seed=11,
        engine=engine,
        label=f"loss-edge-{protocol}",
        config={"max_rounds": 40},
    )


def histories(run):
    return [result.history for result in run.results()]


class TestIndependentLossExtremes:
    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    @pytest.mark.parametrize("protocol", ["push", "pull", "push-pull"])
    def test_p_zero_matches_reliable_delivery(self, protocol, engine):
        # p=0 must not merely "mostly work": bernoulli(0.0) consumes no
        # entropy, so on EITHER engine the run is bit-identical — down to
        # per-round history — to no failure model at all.
        lossless = run_spec(loss_spec(0.0, engine=engine, protocol=protocol))
        reliable = run_spec(
            ScenarioSpec(
                name="reliable",
                graph=GraphSpec(
                    family="connected-random-regular", params={"n": 64, "d": 6}
                ),
                protocol=ProtocolSpec(name=protocol),
                repetitions=3,
                master_seed=11,
                engine=engine,
                # Same label => same derived run seeds as the p=0 spec; only
                # the failure model differs between the two runs.
                label=f"loss-edge-{protocol}",
                config={"max_rounds": 40},
            )
        )
        assert histories(lossless) == histories(reliable)
        assert all(result.success for result in lossless.results())

    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    @pytest.mark.parametrize("protocol", ["push", "pull", "push-pull"])
    def test_p_one_nobody_learns_anything(self, protocol, engine):
        run = run_spec(loss_spec(1.0, engine=engine, protocol=protocol))
        for result in run.results():
            assert result.success is False
            # The informed set never grows past the source.
            assert all(row.informed_after == 1 for row in result.history)

    @pytest.mark.parametrize("protocol", ["push", "pull", "push-pull"])
    def test_p_one_engines_agree_on_the_forced_trajectory(self, protocol):
        # The engines promise aggregate semantics, not shared draw order —
        # but at p=1 the trajectory is forced (nothing ever arrives), so
        # their informed evolutions must coincide exactly: pinned at the
        # source for the full max_rounds budget.
        scalar = run_spec(loss_spec(1.0, engine="scalar", protocol=protocol))
        vectorized = run_spec(loss_spec(1.0, engine="vectorized", protocol=protocol))
        trajectory = lambda run: [  # noqa: E731
            [row.informed_after for row in result.history] for result in run.results()
        ]
        assert trajectory(scalar) == trajectory(vectorized)
        # Pinned at the source for however long the protocol keeps trying
        # (protocols may give up before the max_rounds config cap).
        for informed in trajectory(scalar):
            assert informed and set(informed) == {1}

    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    def test_informed_counts_monotone_for_any_loss(self, engine):
        # Losing copies can slow the broadcast but never un-inform a node.
        for p in (0.0, 0.5, 1.0):
            for result in run_spec(loss_spec(p, engine=engine)).results():
                informed = [row.informed_after for row in result.history]
                assert informed == sorted(informed)

    def test_model_consumes_no_entropy_at_the_extremes(self):
        rng = RandomSource(seed=3)
        before = rng.randint(0, 2**31)
        rng_a = RandomSource(seed=3)
        total = IndependentLoss(transmission_loss_probability=1.0)
        none = IndependentLoss(transmission_loss_probability=0.0)
        assert total.transmission_lost(rng_a) is True
        assert none.transmission_lost(rng_a) is False
        assert total.channel_fails(rng_a) is False  # channel p defaults to 0
        # All three calls consumed nothing: the stream is still aligned.
        assert rng_a.randint(0, 2**31) == before

    def test_probabilities_validated(self):
        with pytest.raises(ConfigurationError, match="transmission_loss"):
            IndependentLoss(transmission_loss_probability=1.5)
        with pytest.raises(ConfigurationError, match="channel_failure"):
            IndependentLoss(channel_failure_probability=-0.1)

    def test_reliable_delivery_is_the_null_model(self):
        rng = RandomSource(seed=5)
        model = ReliableDelivery()
        assert model.channel_fails(rng) is False
        assert model.transmission_lost(rng) is False


class TestChurnOnTinyGraphs:
    def _churn(self, **overrides):
        defaults = dict(leave_rate=0.5, join_rate=0.5, target_degree=2)
        defaults.update(overrides)
        return UniformChurn(**defaults)

    def test_singleton_graph_source_survives(self):
        # One node that IS the source: protect_source must pin the network
        # at size >= 1 no matter how aggressive the leave rate.
        graph = Graph(range(1))
        states = StateTable(n=1, source=0)
        churn = self._churn(leave_rate=0.9, join_rate=0.0)
        rng = RandomSource(seed=21)
        for round_index in range(1, 20):
            event = churn.apply(round_index, graph, states, rng)
            assert event.departed == []  # the only candidate is protected
            assert 0 in graph
            assert states.contains(0)

    def test_singleton_graph_joiners_attach(self):
        # Joins on an edgeless graph cannot splice (no edges to split), but
        # must still register the node consistently in graph and states.
        graph = Graph(range(1))
        states = StateTable(n=1, source=0)
        churn = self._churn(leave_rate=0.0, join_rate=0.9)
        rng = RandomSource(seed=22)
        # ~1.9x growth per round compounds fast; 10 rounds is plenty.
        for round_index in range(1, 10):
            event = churn.apply(round_index, graph, states, rng)
            for joiner in event.joined:
                assert joiner in graph
                assert states.contains(joiner)
                assert not states[joiner].informed
        assert len(graph) == len(states)

    def test_two_node_graph_never_loses_the_source(self):
        graph = Graph.from_edges(2, [(0, 1)])
        states = StateTable(n=2, source=0)
        churn = self._churn(leave_rate=0.99, join_rate=0.0)
        rng = RandomSource(seed=23)
        for round_index in range(1, 30):
            churn.apply(round_index, graph, states, rng)
        assert 0 in graph and states.contains(0)
        assert len(graph) >= 1

    def test_near_empty_graph_churn_is_consistent(self):
        # Heavy leave + join churn starting from 3 nodes: graph and state
        # table must stay in lockstep and the source must persist, even as
        # the membership turns over almost completely.
        graph = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        states = StateTable(n=3, source=1)
        churn = self._churn(leave_rate=0.6, join_rate=0.6)
        rng = RandomSource(seed=24)
        for round_index in range(1, 50):
            churn.apply(round_index, graph, states, rng)
            assert sorted(graph.iter_nodes()) == sorted(
                node.node_id for node in states
            )
            assert states.contains(states.source)
        # Node ids are never recycled: joiners get fresh ids beyond the
        # original range even after departures freed the low ones.
        new_ids = [n for n in graph.iter_nodes() if n >= 3]
        assert len(new_ids) == len(set(new_ids))

    def test_churn_is_deterministic_in_the_seed(self):
        def run_once():
            graph = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
            states = StateTable(n=3, source=0)
            churn = self._churn(leave_rate=0.4, join_rate=0.4)
            rng = RandomSource(seed=25)
            trace = []
            for round_index in range(1, 30):
                event = churn.apply(round_index, graph, states, rng)
                trace.append((event.departed, event.joined))
            return trace, sorted(graph.iter_nodes())

        assert run_once() == run_once()

    def test_churn_rate_validation(self):
        with pytest.raises(ConfigurationError, match="leave_rate"):
            self._churn(leave_rate=1.0)
        with pytest.raises(ConfigurationError, match="join_rate"):
            self._churn(join_rate=-0.1)
        with pytest.raises(ConfigurationError, match="target_degree"):
            self._churn(target_degree=1)
