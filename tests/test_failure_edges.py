"""Edge-case coverage for the failure models.

Two boundary regions that the standard sweeps never visit:

* :class:`IndependentLoss` at its extremes ``p = 0.0`` (must be exactly the
  reliable-delivery run, engine-independently) and ``p = 1.0`` (no copy ever
  arrives: the informed set stays ``{source}`` forever and the broadcast
  fails), with scalar-vs-vectorized history parity at both ends;
* :class:`UniformChurn` on singleton and near-empty graphs, where the
  splice-based join and the protected source leave almost no room to act.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.node import StateTable
from repro.core.rng import RandomSource
from repro.failures.churn import AdversarialChurn, BurstChurn, UniformChurn
from repro.failures.message_loss import IndependentLoss, ReliableDelivery
from repro.graphs.base import Graph
from repro.spec import (
    FailureSpec,
    GraphSpec,
    ProtocolSpec,
    ScenarioSpec,
    run_spec,
)


def loss_spec(p: float, engine: str = "auto", protocol: str = "push") -> ScenarioSpec:
    return ScenarioSpec(
        name=f"loss-edge-{protocol}-{p}",
        graph=GraphSpec(family="connected-random-regular", params={"n": 64, "d": 6}),
        protocol=ProtocolSpec(name=protocol),
        failure=FailureSpec(
            model="independent-loss",
            params={"transmission_loss_probability": p},
        ),
        repetitions=3,
        master_seed=11,
        engine=engine,
        label=f"loss-edge-{protocol}",
        config={"max_rounds": 40},
    )


def histories(run):
    return [result.history for result in run.results()]


class TestIndependentLossExtremes:
    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    @pytest.mark.parametrize("protocol", ["push", "pull", "push-pull"])
    def test_p_zero_matches_reliable_delivery(self, protocol, engine):
        # p=0 must not merely "mostly work": bernoulli(0.0) consumes no
        # entropy, so on EITHER engine the run is bit-identical — down to
        # per-round history — to no failure model at all.
        lossless = run_spec(loss_spec(0.0, engine=engine, protocol=protocol))
        reliable = run_spec(
            ScenarioSpec(
                name="reliable",
                graph=GraphSpec(
                    family="connected-random-regular", params={"n": 64, "d": 6}
                ),
                protocol=ProtocolSpec(name=protocol),
                repetitions=3,
                master_seed=11,
                engine=engine,
                # Same label => same derived run seeds as the p=0 spec; only
                # the failure model differs between the two runs.
                label=f"loss-edge-{protocol}",
                config={"max_rounds": 40},
            )
        )
        assert histories(lossless) == histories(reliable)
        assert all(result.success for result in lossless.results())

    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    @pytest.mark.parametrize("protocol", ["push", "pull", "push-pull"])
    def test_p_one_nobody_learns_anything(self, protocol, engine):
        run = run_spec(loss_spec(1.0, engine=engine, protocol=protocol))
        for result in run.results():
            assert result.success is False
            # The informed set never grows past the source.
            assert all(row.informed_after == 1 for row in result.history)

    @pytest.mark.parametrize("protocol", ["push", "pull", "push-pull"])
    def test_p_one_engines_agree_on_the_forced_trajectory(self, protocol):
        # The engines promise aggregate semantics, not shared draw order —
        # but at p=1 the trajectory is forced (nothing ever arrives), so
        # their informed evolutions must coincide exactly: pinned at the
        # source for the full max_rounds budget.
        scalar = run_spec(loss_spec(1.0, engine="scalar", protocol=protocol))
        vectorized = run_spec(loss_spec(1.0, engine="vectorized", protocol=protocol))
        trajectory = lambda run: [  # noqa: E731
            [row.informed_after for row in result.history] for result in run.results()
        ]
        assert trajectory(scalar) == trajectory(vectorized)
        # Pinned at the source for however long the protocol keeps trying
        # (protocols may give up before the max_rounds config cap).
        for informed in trajectory(scalar):
            assert informed and set(informed) == {1}

    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    def test_informed_counts_monotone_for_any_loss(self, engine):
        # Losing copies can slow the broadcast but never un-inform a node.
        for p in (0.0, 0.5, 1.0):
            for result in run_spec(loss_spec(p, engine=engine)).results():
                informed = [row.informed_after for row in result.history]
                assert informed == sorted(informed)

    def test_model_consumes_no_entropy_at_the_extremes(self):
        rng = RandomSource(seed=3)
        before = rng.randint(0, 2**31)
        rng_a = RandomSource(seed=3)
        total = IndependentLoss(transmission_loss_probability=1.0)
        none = IndependentLoss(transmission_loss_probability=0.0)
        assert total.transmission_lost(rng_a) is True
        assert none.transmission_lost(rng_a) is False
        assert total.channel_fails(rng_a) is False  # channel p defaults to 0
        # All three calls consumed nothing: the stream is still aligned.
        assert rng_a.randint(0, 2**31) == before

    def test_probabilities_validated(self):
        with pytest.raises(ConfigurationError, match="transmission_loss"):
            IndependentLoss(transmission_loss_probability=1.5)
        with pytest.raises(ConfigurationError, match="channel_failure"):
            IndependentLoss(channel_failure_probability=-0.1)

    def test_reliable_delivery_is_the_null_model(self):
        rng = RandomSource(seed=5)
        model = ReliableDelivery()
        assert model.channel_fails(rng) is False
        assert model.transmission_lost(rng) is False


class TestChurnOnTinyGraphs:
    def _churn(self, **overrides):
        defaults = dict(leave_rate=0.5, join_rate=0.5, target_degree=2)
        defaults.update(overrides)
        return UniformChurn(**defaults)

    def test_singleton_graph_source_survives(self):
        # One node that IS the source: protect_source must pin the network
        # at size >= 1 no matter how aggressive the leave rate.
        graph = Graph(range(1))
        states = StateTable(n=1, source=0)
        churn = self._churn(leave_rate=0.9, join_rate=0.0)
        rng = RandomSource(seed=21)
        for round_index in range(1, 20):
            event = churn.apply(round_index, graph, states, rng)
            assert event.departed == []  # the only candidate is protected
            assert 0 in graph
            assert states.contains(0)

    def test_singleton_graph_joiners_attach(self):
        # Joins on an edgeless graph cannot splice (no edges to split), but
        # must still register the node consistently in graph and states.
        graph = Graph(range(1))
        states = StateTable(n=1, source=0)
        churn = self._churn(leave_rate=0.0, join_rate=0.9)
        rng = RandomSource(seed=22)
        # ~1.9x growth per round compounds fast; 10 rounds is plenty.
        for round_index in range(1, 10):
            event = churn.apply(round_index, graph, states, rng)
            for joiner in event.joined:
                assert joiner in graph
                assert states.contains(joiner)
                assert not states[joiner].informed
        assert len(graph) == len(states)

    def test_two_node_graph_never_loses_the_source(self):
        graph = Graph.from_edges(2, [(0, 1)])
        states = StateTable(n=2, source=0)
        churn = self._churn(leave_rate=0.99, join_rate=0.0)
        rng = RandomSource(seed=23)
        for round_index in range(1, 30):
            churn.apply(round_index, graph, states, rng)
        assert 0 in graph and states.contains(0)
        assert len(graph) >= 1

    def test_near_empty_graph_churn_is_consistent(self):
        # Heavy leave + join churn starting from 3 nodes: graph and state
        # table must stay in lockstep and the source must persist, even as
        # the membership turns over almost completely.
        graph = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        states = StateTable(n=3, source=1)
        churn = self._churn(leave_rate=0.6, join_rate=0.6)
        rng = RandomSource(seed=24)
        for round_index in range(1, 50):
            churn.apply(round_index, graph, states, rng)
            assert sorted(graph.iter_nodes()) == sorted(
                node.node_id for node in states
            )
            assert states.contains(states.source)
        # Node ids are never recycled: joiners get fresh ids beyond the
        # original range even after departures freed the low ones.
        new_ids = [n for n in graph.iter_nodes() if n >= 3]
        assert len(new_ids) == len(set(new_ids))

    def test_churn_is_deterministic_in_the_seed(self):
        def run_once():
            graph = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
            states = StateTable(n=3, source=0)
            churn = self._churn(leave_rate=0.4, join_rate=0.4)
            rng = RandomSource(seed=25)
            trace = []
            for round_index in range(1, 30):
                event = churn.apply(round_index, graph, states, rng)
                trace.append((event.departed, event.joined))
            return trace, sorted(graph.iter_nodes())

        assert run_once() == run_once()

    def test_churn_rate_validation(self):
        with pytest.raises(ConfigurationError, match="leave_rate"):
            self._churn(leave_rate=1.0)
        with pytest.raises(ConfigurationError, match="join_rate"):
            self._churn(join_rate=-0.1)
        with pytest.raises(ConfigurationError, match="target_degree"):
            self._churn(target_degree=1)

    def test_churn_ends_mid_broadcast_with_max_rounds(self):
        # max_rounds=2: rounds 3+ must be no-ops — no departures, no joins,
        # and (bernoulli with no candidates aside) no membership change.
        graph = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        states = StateTable(n=3, source=0)
        churn = self._churn(leave_rate=0.6, join_rate=0.6, max_rounds=2)
        rng = RandomSource(seed=26)
        for round_index in range(1, 3):
            churn.apply(round_index, graph, states, rng)
        frozen = sorted(graph.iter_nodes())
        for round_index in range(3, 20):
            event = churn.apply(round_index, graph, states, rng)
            assert event.departed == [] and event.joined == []
        assert sorted(graph.iter_nodes()) == frozen


class TestAdversarialAndBurstEdges:
    def test_burst_fires_exactly_once(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        states = StateTable(n=4, source=0)
        churn = BurstChurn(at_round=3, fraction=1.0)
        rng = RandomSource(seed=31)
        removed_by_round = {}
        for round_index in range(1, 6):
            event = churn.apply(round_index, graph, states, rng)
            removed_by_round[round_index] = len(event.departed)
        # Everything except the protected source goes at round 3, nothing
        # before or after.
        assert removed_by_round == {1: 0, 2: 0, 3: 3, 4: 0, 5: 0}
        assert sorted(graph.iter_nodes()) == [0]

    def test_burst_on_singleton_graph_protects_source(self):
        graph = Graph(range(1))
        states = StateTable(n=1, source=0)
        churn = BurstChurn(at_round=1, fraction=1.0)
        event = churn.apply(1, graph, states, RandomSource(seed=32))
        assert event.departed == []
        assert 0 in graph

    def test_burst_without_protection_can_empty_the_graph(self):
        graph = Graph.from_edges(2, [(0, 1)])
        states = StateTable(n=2, source=0)
        churn = BurstChurn(at_round=1, fraction=1.0, protect_source=False)
        event = churn.apply(1, graph, states, RandomSource(seed=33))
        assert sorted(event.departed) == [0, 1]
        assert len(graph) == 0

    def test_adversarial_targets_only_informed_nodes(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        states = StateTable(n=4, source=0)
        states[1].deliver(1)
        states.commit_round()
        churn = AdversarialChurn(leave_rate=1.0, target="informed")
        event = churn.apply(2, graph, states, RandomSource(seed=34))
        # Node 1 is informed and unprotected; 0 is informed but the source;
        # 2 and 3 are uninformed and therefore never candidates.
        assert event.departed == [1]

    def test_adversarial_newly_informed_window_moves(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        states = StateTable(n=4, source=0)
        states[1].deliver(1)
        states.commit_round()
        churn = AdversarialChurn(leave_rate=1.0, target="newly-informed")
        # Round 2: node 1 was informed in round 1 -> the only target.
        event = churn.apply(2, graph, states, RandomSource(seed=35))
        assert event.departed == [1]
        # Round 3: nobody was informed in round 2, so nothing to remove.
        event = churn.apply(3, graph, states, RandomSource(seed=35))
        assert event.departed == []

    def test_adversarial_on_singleton_graph_is_a_no_op(self):
        graph = Graph(range(1))
        states = StateTable(n=1, source=0)
        churn = AdversarialChurn(leave_rate=1.0, target="informed")
        for round_index in range(1, 5):
            event = churn.apply(round_index, graph, states, RandomSource(seed=36))
            assert event.departed == []
        assert 0 in graph

    def test_adversarial_max_rounds_stops_the_attack(self):
        graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        states = StateTable(n=4, source=0)
        for node in (1, 2, 3):
            states[node].deliver(1)
        states.commit_round()
        churn = AdversarialChurn(leave_rate=1.0, target="informed", max_rounds=1)
        event = churn.apply(2, graph, states, RandomSource(seed=37))
        assert event.departed == []
        assert len(graph) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="at_round"):
            BurstChurn(at_round=0, fraction=0.5)
        with pytest.raises(ConfigurationError, match="fraction"):
            BurstChurn(at_round=1, fraction=1.5)
        with pytest.raises(ConfigurationError, match="target"):
            AdversarialChurn(leave_rate=0.5, target="uninformed")
        with pytest.raises(ConfigurationError, match="leave_rate"):
            AdversarialChurn(leave_rate=-0.1)
