#!/usr/bin/env python3
"""Quickstart: broadcast one message over a random regular graph.

Builds a random 8-regular graph with the configuration model, runs the
paper's Algorithm 1 (four distinct choices per round) and the classical push
protocol, and prints the headline numbers the paper is about: rounds to
completion and message transmissions per node.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Algorithm1,
    PushProtocol,
    RandomSource,
    random_regular_graph,
    run_broadcast,
)


def main() -> None:
    n, d, seed = 4096, 8, 2008

    print(f"Generating a random {d}-regular graph on {n} nodes (configuration model)...")
    graph = random_regular_graph(n, d, RandomSource(seed=seed))

    print("\nRunning Algorithm 1 (four distinct choices per round)...")
    algorithm1 = run_broadcast(graph, Algorithm1(n_estimate=n), source=0, seed=seed)
    print(f"  completed:            {algorithm1.success}")
    print(f"  rounds:               {algorithm1.rounds_to_completion}")
    print(f"  transmissions:        {algorithm1.total_transmissions}")
    print(f"  transmissions / node: {algorithm1.transmissions_per_node:.2f}")

    print("\nRunning the classical push protocol (one choice per round)...")
    push = run_broadcast(graph, PushProtocol(n_estimate=n), source=0, seed=seed)
    print(f"  completed:            {push.success}")
    print(f"  rounds:               {push.rounds_to_completion}")
    print(f"  transmissions:        {push.total_transmissions}")
    print(f"  transmissions / node: {push.transmissions_per_node:.2f}")

    print(
        "\nThe paper's claim: as n grows, Algorithm 1's per-node cost grows like "
        "log log n while push grows like log n — run "
        "`repro-broadcast experiment E2` to see the sweep."
    )


if __name__ == "__main__":
    main()
