#!/usr/bin/env python3
"""Replicated-database maintenance over a peer-to-peer overlay.

This is the application the paper motivates: a database replicated at every
peer of a P2P overlay, kept consistent by gossiping updates.  The example
builds a 512-peer overlay, injects a stream of concurrent updates, and
compares push-only rumour mongering with the paper's Algorithm 1 rule on
convergence time and per-update cost, finishing with a consistency check
across all replicas.

Run with:  python examples/p2p_database_sync.py
"""

from __future__ import annotations

from repro.core.rng import RandomSource
from repro.p2p import (
    Algorithm1Rule,
    Overlay,
    PushRule,
    ReplicatedDatabase,
    UpdateWorkload,
)


def run_rule(name: str, rule, seed: int) -> None:
    rng = RandomSource(seed=seed, name=name)
    overlay = Overlay(n=512, degree=8, rng=rng.spawn("overlay"))
    database = ReplicatedDatabase(overlay=overlay, rule=rule, rng=rng.spawn("db"))
    workload = UpdateWorkload(updates_per_round=3, injection_rounds=8, keys=16)

    report = database.run(workload)
    print(f"{name}:")
    print(f"  updates created:              {report.updates_created}")
    print(f"  fully replicated:             {report.updates_fully_replicated}")
    print(f"  mean convergence rounds:      {report.mean_convergence_rounds:.1f}")
    print(f"  transmissions / update / peer: {report.transmissions_per_update_per_peer:.2f}")
    print(f"  payload transferred:          {report.total_payload_bytes / 1024:.0f} KiB")
    print(f"  all replicas agree:           {database.replicas_agree()}")
    print()


def main() -> None:
    print("Replicated database over a 512-peer random 8-regular overlay.\n")
    run_rule("push-only rumour mongering", PushRule(n_estimate=512), seed=7)
    run_rule("Algorithm 1 gossip rule", Algorithm1Rule(n_estimate=512), seed=7)
    print(
        "Algorithm 1 converges in roughly half the rounds because its single pull "
        "round plus the active-push tail mops up the last replicas quickly."
    )


if __name__ == "__main__":
    main()
