#!/usr/bin/env python3
"""Parallel sweeps: shard a scenario grid across worker processes.

Runs one protocol x size grid four ways and shows they are bit-identical:

1. serially (`run_spec(spec)`),
2. fanned out over two worker processes (`run_spec(spec, workers=2)`),
3. as two independent shard runs merged with `repro.merge_runs` — the
   pattern for spreading one sweep across several hosts,
4. interrupted after half the grid and resumed from its checkpoints.

The label-keyed seed derivation makes every grid point's randomness
independent of where (and in which order) it executes, so parallelism never
changes a single number — only `run.provenance` / the saved table's
`metadata["distributed"]` record how the result was produced.

Run with:  python examples/parallel_sweep.py
"""

from __future__ import annotations

import tempfile

from repro import (
    GraphSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    merge_runs,
    run_spec,
)
from repro.dist import print_point_progress


def main() -> None:
    spec = ScenarioSpec(
        name="parallel-sweep-demo",
        graph=GraphSpec(family="connected-random-regular", params={"n": 256, "d": 8}),
        protocol=ProtocolSpec(name="push"),
        sweep=SweepSpec(
            axes=(
                SweepAxis(
                    path="protocol.name",
                    values=("push", "push-pull", "algorithm1"),
                    key="protocol",
                ),
                SweepAxis(path="graph.params.n", values=(256, 512)),
            )
        ),
        repetitions=5,
        master_seed=2008,
        label="par-{protocol}",
    )

    print(f"Grid: {spec.sweep.size} points x {spec.repetitions} seeds\n")

    print("1. Serial baseline...")
    serial = run_spec(spec)

    print("2. Two worker processes (one line per completed point):")
    parallel = run_spec(spec, workers=2, progress=print_point_progress)
    assert parallel.results() == serial.results()
    print(f"   bit-identical to serial; provenance: {parallel.provenance}\n")

    print("3. Two shards run independently (as two hosts would), then merged:")
    shards = [run_spec(spec, shard=f"{i}/2") for i in range(2)]
    merged = merge_runs(shards)
    assert merged.results() == serial.results()
    print(
        f"   shard sizes {[len(s.points) for s in shards]} -> "
        f"{len(merged.points)} points, bit-identical to serial\n"
    )

    print("4. Interrupt after half the grid, then resume from checkpoints:")
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        run_spec(spec, points=slice(0, 3), checkpoint_dir=checkpoint_dir)
        print("   ...pretend the machine died here...")
        resumed = run_spec(spec, workers=2, checkpoint_dir=checkpoint_dir, resume=True)
        assert resumed.results() == serial.results()
        print(
            "   resumed run re-executed only "
            f"{resumed.provenance['points_run']} of "
            f"{resumed.provenance['points_total']} points "
            f"({resumed.provenance['points_resumed']} from checkpoints), "
            "still bit-identical\n"
        )

    print(merged.to_table().render())


if __name__ == "__main__":
    main()
