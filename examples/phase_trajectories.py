#!/usr/bin/env python3
"""Visualise the phase structure of Algorithm 1 in the terminal.

Runs Algorithm 1 on a random regular graph with full round history, prints
ASCII charts of the informed-nodes trajectory and the (log-scale) decay of the
uninformed set, and summarises what each phase contributed — Phase 1's
exponential growth, Phase 2's geometric mop-up, and the single pull round of
Phase 3.  Finishes with a spectral profile of the underlying graph, the
expansion property the paper's analysis leans on.

Run with:  python examples/phase_trajectories.py
"""

from __future__ import annotations

from repro import Algorithm1, RandomSource, SimulationConfig, random_regular_graph
from repro.analysis import ascii_informed_curve, ascii_multi_series
from repro.core.engine import run_broadcast
from repro.graphs import spectral_expansion_profile
from repro.protocols import PushProtocol


def main() -> None:
    n, d, seed = 2048, 8, 3
    graph = random_regular_graph(n, d, RandomSource(seed=seed))
    full_schedule = SimulationConfig(stop_when_informed=False)

    print(f"Algorithm 1 on a random {d}-regular graph, n = {n} (full schedule)\n")
    result = run_broadcast(graph, Algorithm1(n_estimate=n), seed=seed, config=full_schedule)

    print(ascii_informed_curve(result.informed_curve(), n))
    print()

    print("Per-phase summary:")
    for phase, transmissions in sorted(result.transmissions_by_phase().items()):
        rounds = [record for record in result.history if record.phase == phase]
        informed_end = rounds[-1].informed_after if rounds else 0
        print(
            f"  {phase}: {len(rounds):3d} rounds, {transmissions:7d} transmissions, "
            f"{informed_end:5d} informed at the end"
        )

    print("\nComparison with the classical push protocol (same graph and seed):")
    push = run_broadcast(graph, PushProtocol(n_estimate=n), seed=seed, config=full_schedule)
    chart = ascii_multi_series(
        {
            "algorithm1": result.informed_curve(),
            "push": push.informed_curve(),
        },
        title="informed nodes per round",
    )
    print(chart)

    print("\nSpectral expansion of the underlying graph (Friedman bound check):")
    profile = spectral_expansion_profile(graph)
    print(
        f"  lambda_2 ≈ {profile['second_eigenvalue']:.2f}  "
        f"(2*sqrt(d-1) = {profile['friedman_bound']:.2f}, "
        f"ratio {profile['relative_to_friedman']:.2f})"
    )
    print(
        "  expander-mixing lower bound on a half-cut: "
        f"{profile['mixing_lower_bound']:.0f} edges "
        f"(expected cut {profile['expected_cut']:.0f})"
    )


if __name__ == "__main__":
    main()
