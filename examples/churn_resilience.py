#!/usr/bin/env python3
"""Broadcasting while peers join and leave.

Peer-to-peer overlays change during a broadcast.  This example runs
Algorithm 1 over a random regular graph while a churn model removes and adds
peers every round, at increasing churn rates, and reports what fraction of the
surviving peers received the message and how the cost changes — the paper's
"robust against limited changes in the size of the network" claim.

Run with:  python examples/churn_resilience.py
"""

from __future__ import annotations

from repro import Algorithm1, RandomSource, UniformChurn, random_regular_graph
from repro.core.engine import RoundEngine
from repro.experiments import Table


def main() -> None:
    n, d, seed = 2048, 8, 11
    base_graph = random_regular_graph(n, d, RandomSource(seed=seed))

    table = Table(
        title=f"Algorithm 1 under churn (n = {n}, d = {d})",
        columns=[
            "churn_per_round",
            "informed_fraction",
            "rounds",
            "tx_per_node",
            "final_peers",
        ],
    )

    for rate in [0.0, 0.005, 0.01, 0.02, 0.05]:
        churn = (
            UniformChurn(leave_rate=rate, join_rate=rate, target_degree=d)
            if rate > 0
            else None
        )
        engine = RoundEngine(
            graph=base_graph.copy(),
            protocol=Algorithm1(n_estimate=n),
            seed=seed,
            churn_model=churn,
        )
        result = engine.run(source=0)
        final_peers = result.metadata["final_node_count"]
        table.add_row(
            churn_per_round=rate,
            informed_fraction=result.final_informed / final_peers,
            rounds=(
                result.rounds_to_completion
                if result.rounds_to_completion is not None
                else result.rounds_executed
            ),
            tx_per_node=result.transmissions_per_node,
            final_peers=final_peers,
        )

    print(table.render())
    print(
        "\nEven with a few percent of the network replaced every round, the "
        "broadcast still reaches essentially every surviving peer; joiners that "
        "arrive after the message's horizon rely on the replicated-database "
        "layer's next update (see examples/p2p_database_sync.py)."
    )


if __name__ == "__main__":
    main()
