#!/usr/bin/env python3
"""Scenario specs: describe a whole sweep as one serialisable record.

Builds a ScenarioSpec — protocol × loss-probability grid over a random
regular graph — runs it, round-trips it through JSON, and shows that the
reloaded spec reproduces the exact same results (the seeding discipline is
bit-compatible with hand-wired ExperimentRunner calls).

Run with:  python examples/scenario_specs.py
"""

from __future__ import annotations

from repro import (
    FailureSpec,
    GraphSpec,
    ProtocolSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    run_spec,
)


def main() -> None:
    spec = ScenarioSpec(
        name="loss-robustness-demo",
        graph=GraphSpec(family="connected-random-regular", params={"n": 512, "d": 8}),
        protocol=ProtocolSpec(name="algorithm1"),
        failure=FailureSpec(
            model="independent-loss", params={"transmission_loss_probability": 0.0}
        ),
        sweep=SweepSpec(
            axes=(
                SweepAxis(
                    path="protocol.name", values=("push", "algorithm1"), key="protocol"
                ),
                SweepAxis(
                    path="failure.params.transmission_loss_probability",
                    values=(0.0, 0.1, 0.2),
                    key="loss",
                ),
            )
        ),
        repetitions=3,
        master_seed=2008,
        label="demo-{protocol}-{loss}",
    )

    print("The spec as JSON (write this to a file and run it with "
          "`python -m repro run-spec <file>`):\n")
    print(spec.to_json())

    print("\nRunning the 2 x 3 grid...")
    run = run_spec(spec)
    print(run.to_table().render())

    print("\nRound-tripping through JSON and re-running...")
    reloaded = ScenarioSpec.from_json(spec.to_json())
    assert reloaded == spec
    rerun = run_spec(reloaded)
    for before, after in zip(run.results(), rerun.results()):
        assert before.total_transmissions == after.total_transmissions
        assert before.rounds_executed == after.rounds_executed
    print("identical results — the spec file IS the experiment.")

    print("\nEvery result also records the exact single-point spec that "
          "reproduces it:")
    point_spec = run.points[0].results[0].metadata["spec"]
    print(f"  metadata['spec']['name'] = {point_spec['name']!r}, "
          f"protocol = {point_spec['protocol']['name']!r}, "
          f"loss = {point_spec['failure']['params']['transmission_loss_probability']}")


if __name__ == "__main__":
    main()
