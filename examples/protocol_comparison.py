#!/usr/bin/env python3
"""Compare every bundled protocol on the same random regular graph.

This example exercises the protocol registry and the aggregation helpers: it
runs each protocol several times over one graph and prints a comparison table
(rounds, transmissions per node, channels opened per node, success rate).

Run with:  python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro import RandomSource, aggregate_runs, random_regular_graph
from repro.experiments import Table, repeat_broadcast
from repro.protocols import available_protocols, build_protocol


def main() -> None:
    n, d, seed, repetitions = 2048, 8, 42, 5

    print(f"Graph: random {d}-regular, n = {n}; {repetitions} runs per protocol.\n")
    graph = random_regular_graph(n, d, RandomSource(seed=seed))

    table = Table(
        title=f"Protocol comparison on a random {d}-regular graph (n = {n})",
        columns=["protocol", "rounds", "tx_per_node", "channels_per_node", "success"],
    )

    for name in available_protocols():
        results = repeat_broadcast(
            graph=graph,
            protocol_factory=lambda n_est, protocol=name: build_protocol(protocol, n_est),
            n_estimate=n,
            seeds=[seed + i for i in range(repetitions)],
        )
        aggregate = aggregate_runs(results)
        table.add_row(
            protocol=name,
            rounds=aggregate.rounds.mean,
            tx_per_node=aggregate.transmissions_per_node.mean,
            channels_per_node=aggregate.channels_per_node.mean,
            success=aggregate.success_rate,
        )

    print(table.render())
    print(
        "\nNote how the four-choice protocols finish in fewer rounds, and how the "
        "sequential variant trades rounds for the same transmission budget."
    )


if __name__ == "__main__":
    main()
